// Command hyperrecover-trace renders one fault-injection run's always-on
// telemetry: the flight-recorder timeline as a Chrome trace_event JSON
// document (open chrome://tracing — or https://ui.perfetto.dev — and load
// the file; per-CPU lanes carry hypervisor activity, the "recovery" lane
// carries the detect→pause→repair-phase→resume spans and markers), or as
// a plain-text timeline followed by the end-of-run metrics registry.
//
// Examples:
//
//	hyperrecover-trace -seed 3 -fault code -adversarial > trace.json
//	hyperrecover-trace -adversarial -find-failed 50 -format text
//	hyperrecover-trace -seed 7 -mechanism rehype -fault register > trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/inject"
	"nilihype/internal/journal"
)

func main() {
	var o options
	flag.Uint64Var(&o.Seed, "seed", 1, "injection run seed")
	flag.StringVar(&o.Fault, "fault", "code", "fault type: failstop | register | code")
	flag.StringVar(&o.Mechanism, "mechanism", "nilihype", "recovery mechanism: nilihype | rehype | checkpoint")
	flag.BoolVar(&o.Adversarial, "adversarial", false,
		"adversarial run: hybrid escalation ladder, audit gate, burst fault, fault-during-recovery")
	flag.StringVar(&o.Format, "format", "chrome", "output format: chrome | text")
	flag.IntVar(&o.FlightCap, "flight", 4096, "flight recorder capacity (events retained)")
	flag.IntVar(&o.RepairCPUs, "repair-cpus", 0,
		"partition repair+audit into recovery domains over this many CPUs; per-domain phase spans appear in the trace (0/1 = serial; implies audit)")
	flag.IntVar(&o.FindFailed, "find-failed", 0,
		"scan up to N seeds from -seed for a run that fails recovery or escalates, and render that run")
	flag.Parse()

	if err := render(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-trace:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set; separated from flag.Parse so tests can
// drive render directly.
type options struct {
	Seed        uint64
	Fault       string
	Mechanism   string
	Adversarial bool
	Format      string
	FlightCap   int
	RepairCPUs  int
	FindFailed  int
}

// buildRunConfig maps options to the campaign run configuration.
func buildRunConfig(o options) (campaign.RunConfig, error) {
	mech, err := parseMechanism(o.Mechanism)
	if err != nil {
		return campaign.RunConfig{}, err
	}
	ft, err := parseFault(o.Fault)
	if err != nil {
		return campaign.RunConfig{}, err
	}
	rc := campaign.RunConfig{
		Seed:                   o.Seed,
		Fault:                  ft,
		Recovery:               core.Config{Mechanism: mech, Enhancements: core.AllEnhancements},
		FlightRecorderCapacity: o.FlightCap,
	}
	if o.Adversarial {
		rc.Recovery = core.HybridConfig()
		rc.Recovery.Escalation.Audit = true
		rc.BurstWindow = 100 * time.Millisecond
		rc.BurstFault = inject.Register
		rc.FaultDuringRecovery = true
	}
	if o.RepairCPUs > 1 {
		rc.Recovery.RepairCPUs = o.RepairCPUs
		rc.Recovery.Escalation.Audit = true
	}
	return rc, nil
}

// render executes the run (scanning seeds if asked) and writes the
// requested rendering to w; the one-line run verdict goes to diag so a
// redirected chrome trace stays pure JSON.
func render(o options, w, diag io.Writer) error {
	rc, err := buildRunConfig(o)
	if err != nil {
		return err
	}
	res, tel, jrn := campaign.TraceRun(rc)
	for i := 1; i < o.FindFailed && !wentWrong(res); i++ {
		rc.Seed++
		res, tel, jrn = campaign.TraceRun(rc)
	}
	if tel == nil {
		return fmt.Errorf("run failed to boot: %s", res.FailReason)
	}
	if o.FindFailed > 0 && !wentWrong(res) {
		return fmt.Errorf("no failed or escalated run in %d seed(s) from %d", o.FindFailed, o.Seed)
	}
	fmt.Fprintf(diag, "seed %d: outcome=%v success=%v escalated=%v attempts=%d fail=%q\n",
		res.Seed, res.Outcome, res.Success, res.Escalated, res.Attempts, res.FailReason)

	switch strings.ToLower(o.Format) {
	case "chrome", "":
		// The causal journal renders as its own lane alongside the raw
		// flight-recorder lanes.
		return tel.WriteChromeTraceLanes(w, campaign.MachineCPUs, journal.TraceLane(jrn))
	case "text":
		if err := tel.WriteTextTimeline(w); err != nil {
			return err
		}
		if len(jrn) > 0 {
			fmt.Fprintln(w, "\nrecovery journal:")
			for _, e := range jrn {
				fmt.Fprintln(w, " ", e)
			}
		}
		fmt.Fprintln(w)
		return tel.WriteMetrics(w)
	default:
		return fmt.Errorf("unknown format %q (want chrome or text)", o.Format)
	}
}

// wentWrong reports whether the run's recovery story went sideways — the
// runs whose flight recording is worth looking at.
func wentWrong(r campaign.Result) bool {
	return r.Detected && (!r.Success || r.Escalated)
}

func parseMechanism(s string) (core.Mechanism, error) {
	switch strings.ToLower(s) {
	case "nilihype", "microreset":
		return core.Microreset, nil
	case "rehype", "microreboot":
		return core.Microreboot, nil
	case "rehype-cp", "checkpoint":
		return core.CheckpointRestore, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q", s)
	}
}

func parseFault(s string) (inject.FaultType, error) {
	switch strings.ToLower(s) {
	case "failstop":
		return inject.Failstop, nil
	case "register":
		return inject.Register, nil
	case "code":
		return inject.Code, nil
	default:
		return 0, fmt.Errorf("unknown fault type %q", s)
	}
}
