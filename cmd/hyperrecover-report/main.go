// Command hyperrecover-report regenerates the full evaluation in one run:
// the Table I enhancement ladder, the Figure 2 recovery-rate grid with the
// §VII-A outcome breakdowns, and the Figure 3 overhead table — the numbers
// recorded in EXPERIMENTS.md. Expect several CPU-minutes.
//
// With -format json it instead emits the machine-readable fault-class ×
// ladder recovery matrix (per-class stats, root causes, health trajectory)
// plus the aggregated end-user SLO block, sized by -runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/health"
	"nilihype/internal/inject"
	"nilihype/internal/report"
	"nilihype/internal/traffic"
)

func main() {
	format := flag.String("format", "text", "output format: text (full evaluation) | json (fault-class matrix + SLO block)")
	runs := flag.Int("runs", 100, "runs per fault-class cell (json mode)")
	users := flag.Uint64("users", 100_000, "simulated end-user population per run (json mode; 0 disables the SLO block)")
	flag.Parse()

	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-report:", err)
		os.Exit(1)
	}
	if f == report.JSON {
		if err := jsonReport(os.Stdout, *runs, *users); err != nil {
			fmt.Fprintln(os.Stderr, "hyperrecover-report:", err)
			os.Exit(1)
		}
		return
	}
	textReport()
}

// ladderJSON is one escalation ladder's row of the JSON report.
type ladderJSON struct {
	Runs         int                                  `json:"runs"`
	FaultClasses map[string]*campaign.FaultClassStats `json:"fault_classes"`
	RootCauses   map[string]int                       `json:"root_causes,omitempty"`
	SLORuns      int                                  `json:"slo_runs,omitempty"`
	SLO          *traffic.SLO                         `json:"slo,omitempty"`
	Health       health.Report                        `json:"health"`
}

// jsonReport runs the fault-class × ladder matrix with the end-user
// traffic engine armed and emits the per-class recovery stats, the
// forensic root-cause breakdown, the replayed host-health trajectory, and
// the aggregate SLO block as one JSON document.
func jsonReport(w *os.File, runs int, users uint64) error {
	out := map[string]*ladderJSON{}
	for _, lad := range []struct {
		name string
		cfg  core.Config
	}{
		{"hybrid", core.HybridConfig()},
		{"full-ladder", core.FullLadderConfig()},
	} {
		var sum campaign.Summary
		first := true
		for _, ft := range []inject.FaultType{
			inject.Failstop, inject.Register, inject.Code,
			inject.PrivVMCrash, inject.PrivVMHang, inject.DeviceIOAPIC,
		} {
			c := campaign.Campaign{
				Base: campaign.RunConfig{
					Setup: campaign.ThreeAppVM, Fault: ft, Logging: true,
					Recovery:      lad.cfg,
					BenchDuration: 2 * time.Second,
					Traffic:       traffic.Config{Users: users},
				},
				Runs: runs,
			}
			s := c.Execute()
			if first {
				sum, first = s, false
			} else {
				sum.Merge(s)
			}
		}
		row := &ladderJSON{
			Runs:         sum.Runs,
			FaultClasses: sum.FaultClasses,
			RootCauses:   sum.RootCauses,
			SLORuns:      sum.SLORuns,
			Health:       sum.HealthReport(health.Config{}),
		}
		if sum.SLORuns > 0 {
			slo := sum.SLO
			row.SLO = &slo
		}
		out[lad.name] = row
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func textReport() {
	start := time.Now()
	fmt.Println("== Table I ladder (1AppVM failstop, n=500) ==")
	for _, rung := range core.Ladder() {
		c := campaign.Campaign{
			Base: campaign.RunConfig{
				Setup: campaign.OneAppVM, Fault: inject.Failstop,
				Workload: guest.UnixBench, Logging: true,
				Recovery:      core.Config{Mechanism: core.Microreset, Enhancements: rung.Enh},
				BenchDuration: 2 * time.Second,
			},
			Runs: 500,
		}
		rate, ci := c.Execute().SuccessRate()
		fmt.Printf("%-52s %5.1f%% ± %4.1f%%\n", rung.Label, 100*rate, 100*ci)
	}
	fmt.Println("\n== Figure 2 (3AppVM, n: fs=400 reg=1500 code=700) ==")
	fig2 := report.NewBarChart("successful recovery rate (%)")
	fig2.Max = 100
	for _, mech := range []core.Mechanism{core.Microreset, core.Microreboot} {
		for _, ft := range []inject.FaultType{inject.Failstop, inject.Register, inject.Code} {
			runs := map[inject.FaultType]int{inject.Failstop: 400, inject.Register: 1500, inject.Code: 700}[ft]
			c := campaign.Campaign{
				Base: campaign.RunConfig{
					Setup: campaign.ThreeAppVM, Fault: ft, Logging: true,
					Recovery:      core.Config{Mechanism: mech, Enhancements: core.AllEnhancements},
					BenchDuration: 3 * time.Second,
				},
				Runs: runs,
			}
			s := c.Execute()
			rate, ci := s.SuccessRate()
			nrate, _ := s.NoVMFRate()
			nm, sdc, det := s.OutcomeRates()
			fmt.Printf("%-9s %-9s success %5.1f%%±%4.1f%% noVMF %5.1f%% | nm=%4.1f%% sdc=%4.1f%% det=%4.1f%% (detected n=%d)\n",
				mech, ft, 100*rate, 100*ci, 100*nrate, 100*nm, 100*sdc, 100*det, s.DetectedCount)
			fig2.AddBar(fmt.Sprintf("%v/%v", mech, ft), 100*rate,
				fmt.Sprintf("± %.1f (noVMF %.1f)", 100*ci, 100*nrate))
		}
	}
	fmt.Println()
	fmt.Print(fig2.Render())
	fmt.Println("\n== Figure 3 overhead ==")
	var pts []campaign.OverheadPoint
	for _, cfg := range campaign.AllOverheadConfigs() {
		pts = append(pts, campaign.MeasureOverhead(cfg, 2*time.Second, 1))
	}
	fig3 := report.NewBarChart("hypervisor processing overhead (%)")
	for _, p := range pts {
		fig3.AddBar(p.Config.String(), p.WithLogging(),
			fmt.Sprintf("(NiLiHype* %.1f)", p.WithoutLogging()))
	}
	fmt.Print(fig3.Render())

	fmt.Println("\n== Recovery domains (3AppVM failstop microreset + audit, n=200) ==")
	domains := func(repairCPUs int) campaign.Summary {
		rc := core.Config{Mechanism: core.Microreset, Enhancements: core.AllEnhancements}
		rc.Escalation.Audit = true
		rc.RepairCPUs = repairCPUs
		c := campaign.Campaign{
			Base: campaign.RunConfig{
				Setup: campaign.ThreeAppVM, Fault: inject.Failstop, Logging: true,
				Recovery:      rc,
				BenchDuration: 2 * time.Second,
			},
			Runs: 200,
		}
		return c.Execute()
	}
	serial, parallel := domains(0), domains(campaign.MachineCPUs)
	sm, pm := serial.MeanSuccessLatency(), parallel.MeanSuccessLatency()
	fmt.Printf("serial repair:   mean recovery latency %v (n=%d successful)\n",
		sm.Round(10*time.Microsecond), serial.RecoverySuccess)
	fmt.Printf("%d-CPU domains:  mean recovery latency %v (n=%d successful), %.1f%% lower\n",
		campaign.MachineCPUs, pm.Round(10*time.Microsecond), parallel.RecoverySuccess,
		100*(1-float64(pm)/float64(sm)))
	fmt.Printf("parallel accounting: %d run(s) over up to %d domains; serialized %v vs parallel %v charged\n",
		parallel.ParallelRepairRuns, parallel.RepairDomains,
		parallel.SerialRepairLatency.Round(time.Millisecond),
		parallel.ParallelRepairLatency.Round(time.Millisecond))

	fmt.Println("\n== E12 fault-class × ladder recovery matrix (3AppVM, n=100/cell) ==")
	ladders := []struct {
		name string
		cfg  core.Config
	}{
		{"hybrid", core.HybridConfig()},
		{"full-ladder", core.FullLadderConfig()},
	}
	privSuccess := map[string]int{}
	for _, ft := range []inject.FaultType{
		inject.Failstop, inject.Register, inject.Code,
		inject.PrivVMCrash, inject.PrivVMHang, inject.DeviceIOAPIC,
	} {
		for _, lad := range ladders {
			c := campaign.Campaign{
				Base: campaign.RunConfig{
					Setup: campaign.ThreeAppVM, Fault: ft, Logging: true,
					Recovery:      lad.cfg,
					BenchDuration: 2 * time.Second,
				},
				Runs: 100,
			}
			for class, fc := range c.Execute().FaultClasses {
				rate, ci := fc.SuccessRate()
				fmt.Printf("%-12s %-12s detected=%-4d success %5.1f%%±%4.1f%%  mean-latency %-12v audit r/d/e %d/%d/%d\n",
					class, lad.name, fc.Detected, 100*rate, 100*ci,
					fc.MeanSuccessLatency().Round(10*time.Microsecond),
					fc.AuditRepaired, fc.AuditDegraded, fc.AuditEscalate)
				if ft == inject.PrivVMCrash || ft == inject.PrivVMHang {
					privSuccess[lad.name] += fc.Success
				}
			}
		}
	}
	fmt.Printf("PrivVM-fault recoveries: hybrid=%d, full-ladder=%d (restart rung gains %d)\n",
		privSuccess["hybrid"], privSuccess["full-ladder"],
		privSuccess["full-ladder"]-privSuccess["hybrid"])

	fmt.Println("\nelapsed:", time.Since(start))
}
