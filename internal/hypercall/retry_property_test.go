package hypercall

import (
	"fmt"
	"testing"
)

// TestPropertyRetryAfterAnyPrefix is the central correctness property of
// the recovery machinery: for EVERY handler and EVERY abandonment point,
// executing a prefix of the program, force-releasing the leaked locks,
// rolling back the undo log, and retrying from scratch must produce
// exactly the state of an uninterrupted execution.
//
// Abandonments inside unmitigated windows are excluded: those model the
// §IV residual where the log cannot be trusted, and their retries are
// *expected* to trip assertions (covered by the poisoned-retry tests).
func TestPropertyRetryAfterAnyPrefix(t *testing.T) {
	type scenario struct {
		name  string
		setup func(fx *fixture) // pre-state (e.g. pin before unpin)
		call  func() *Call
	}
	scenarios := []scenario{
		{"mmu_pin", nil, func() *Call {
			return &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 200}}
		}},
		{"mmu_unpin", func(fx *fixture) {
			fx.runAll(t, &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 200}})
		}, func() *Call {
			return &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUUnpin, 200}}
		}},
		{"memory_populate", nil, func() *Call {
			return &Call{Op: OpMemoryOp, Dom: 1, Args: [4]uint64{MemPopulate, 8}}
		}},
		{"memory_release", nil, func() *Call {
			return &Call{Op: OpMemoryOp, Dom: 1, Args: [4]uint64{MemRelease, 8}}
		}},
		{"grant_map", func(fx *fixture) {
			if err := fx.d1.GrantTab.Grant(5, 190, false); err != nil {
				t.Fatal(err)
			}
		}, func() *Call {
			return &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantMap, 5, 190}}
		}},
		{"grant_unmap", func(fx *fixture) {
			if err := fx.d1.GrantTab.Grant(5, 190, false); err != nil {
				t.Fatal(err)
			}
			fx.runAll(t, &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantMap, 5, 190}})
		}, func() *Call {
			return &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantUnmap, 5, 190}}
		}},
		{"evtchn_send", nil, func() *Call {
			// Ring port 1 is bound by the fixture.
			return &Call{Op: OpEventChannelOp, Dom: 1, Args: [4]uint64{0, 0, 1}}
		}},
		{"set_timer", nil, func() *Call {
			return &Call{Op: OpSetTimerOp, Dom: 1, Args: [4]uint64{0, 1000000}}
		}},
		{"console_io", nil, func() *Call {
			return &Call{Op: OpConsoleIO, Dom: 1}
		}},
		{"vcpu_op", nil, func() *Call {
			return &Call{Op: OpVCPUOp, Dom: 1}
		}},
		{"syscall_forward", nil, func() *Call {
			return &Call{Op: OpSyscallForward, Dom: 1}
		}},
		{"ept_populate", nil, func() *Call {
			return &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTPopulate, 200}}
		}},
		{"ept_unmap", func(fx *fixture) {
			fx.runAll(t, &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTPopulate, 200}})
		}, func() *Call {
			return &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTUnmap, 200}}
		}},
		{"multicall_pins", nil, func() *Call {
			return &Call{Op: OpMulticall, Dom: 1, Batch: []*Call{
				{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 201}},
				{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 202}},
				{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 203}},
			}}
		}},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Reference: uninterrupted execution.
			ref := newFixture(t)
			if sc.setup != nil {
				sc.setup(ref)
			}
			ref.runAll(t, sc.call())
			want := snapshotState(ref)

			// Program length for the enumeration (built on a throwaway
			// fixture so build-time effects don't leak).
			probe := newFixture(t)
			if sc.setup != nil {
				sc.setup(probe)
			}
			probe.env.Call = sc.call()
			prog, err := Build(probe.env, probe.env.Call)
			if err != nil {
				t.Fatal(err)
			}

			for k := 0; k < len(prog); k++ {
				if prog[k].Unmitigated {
					continue // §IV residual: poisoned retries are expected to fail
				}
				fx := newFixture(t)
				if sc.setup != nil {
					sc.setup(fx)
				}
				call := sc.call()
				if err := fx.run(call, k); err != nil {
					t.Fatalf("prefix %d: %v", k, err)
				}
				// Recovery: release leaked locks, roll back, retry.
				fx.locks.UnlockHeapLocks()
				fx.locks.UnlockStaticSegment()
				fx.env.Undo.Rollback()
				if err := fx.run(call, -1); err != nil {
					t.Fatalf("retry after prefix %d failed: %v", k, err)
				}
				got := snapshotState(fx)
				if got != want {
					t.Fatalf("prefix %d: state diverged\n got: %s\nwant: %s", k, got, want)
				}
				if held := fx.locks.HeldLocks(); len(held) != 0 {
					t.Fatalf("prefix %d: %d locks held after retry", k, len(held))
				}
			}
		})
	}
}

// snapshotState summarizes the externally observable hypervisor state the
// retries must converge on.
func snapshotState(fx *fixture) string {
	var counts, validated int
	for i := 0; i < fx.frames.Len(); i++ {
		f := fx.frames.Frame(i)
		counts += f.UseCount
		if f.Validated {
			validated++
		}
	}
	return fmt.Sprintf("useCountSum=%d validated=%d totPages=%d inconsistent=%d pendingLocal=%d pendingPeer=%d timers=%d",
		counts, validated, fx.d1.TotPages,
		len(fx.frames.InconsistentFrames()),
		len(fx.d1.Events.PendingPorts()), len(fx.d0.Events.PendingPorts()),
		fx.env.Timers.PendingCount(0)) + fmt.Sprintf(" maps=%d grants=%d",
		fx.d1.Maptrack.Active(), len(fx.d1.GrantTab.ActiveGrants()))
}
