// Package traffic is an open-loop workload layer: it simulates millions of
// end users issuing requests against the host without creating per-request
// simulator events. Users are aggregated into cohorts (batches sharing a
// request period and phase) parked on a hierarchical timing wheel whose
// coarse slots feed simclock exactly one event per tick; each tick fires
// the due cohorts' request batches and scores them arithmetically against
// the live service state (up, or inside a detect→pause→repair→resume
// window). Goodput dips, delayed completions, timeouts, and p99 inflation
// all fall out of fixed-point integer accounting instead of per-packet
// simulation, so a million-user population costs a few hundred events per
// run — campaign throughput stays within a few percent of traffic-off.
//
// This is the reception-rate idea of guest.NetSender (one flow, packet
// counting, recovery windows excluded by annotation) generalized to a
// population: instead of excluding the recovery window from a single
// flow's denominator, the population's requests that arrive inside the
// window are held open-loop and resolved at resume — late (delayed),
// past-deadline (timed out), or never (failed) — which is what end users
// actually experience through an outage (Candea & Fox's end-user
// microreboot metric; ROADMAP item 2).
//
// Determinism: the engine draws no randomness and owns no mutable state
// outside itself, and every accounting operation is an exact-integer
// commutative add — so run results are bit-identical at any campaign
// parallelism, fork-vs-cold, and shard count, and SLO.Merge is
// order-independent.
package traffic

import (
	"time"

	"nilihype/internal/simclock"
	"nilihype/internal/telemetry"
)

// tickTag labels the engine's single recurring simclock event.
const tickTag = "traffic-tick"

// Config describes the simulated population. The zero value disables the
// layer (Enabled() == false); all fields are plain scalars so the struct
// is comparable and survives the campaign shard JSON protocol exactly.
type Config struct {
	// Users is the simulated population size. 0 disables the engine.
	Users uint64
	// Cohorts is the number of aggregation batches the population is
	// split into (more cohorts = finer phase spread, more per-tick work).
	// Default: Users/1000, clamped to [1, 65536].
	Cohorts int
	// Period is each user's request period (open loop: one request per
	// user per period, regardless of completion). Default 1s.
	Period time.Duration
	// Timeout is the end-user request deadline: a request unanswered for
	// longer counts as timed out even if service later returns.
	// Default 500ms.
	Timeout time.Duration
	// BaseLatency is the modeled service latency of an undisturbed
	// request. Default 2ms.
	BaseLatency time.Duration
	// SlotWidth is the wheel tick quantum — arrival timestamps are
	// rounded to it, and the engine costs one simclock event per tick.
	// Default 5ms (400 events per 2s run).
	SlotWidth time.Duration
	// Interval is the goodput scoring window; each interval with offered
	// load is scored served/offered and the worst kept. Default 1s.
	Interval time.Duration
}

// Enabled reports whether the traffic layer is armed at all.
func (c Config) Enabled() bool { return c.Users > 0 }

// withDefaults fills unset fields and clamps the period into the wheel
// horizon. It never mutates the receiver.
func (c Config) withDefaults() Config {
	if c.SlotWidth <= 0 {
		c.SlotWidth = 5 * time.Millisecond
	}
	if c.Period < c.SlotWidth {
		if c.Period <= 0 {
			c.Period = time.Second
		}
		if c.Period < c.SlotWidth {
			c.Period = c.SlotWidth
		}
	}
	if maxPeriod := c.SlotWidth * (wheelHorizon - 1); c.Period > maxPeriod {
		c.Period = maxPeriod
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.BaseLatency <= 0 {
		c.BaseLatency = 2 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Cohorts <= 0 {
		c.Cohorts = int(c.Users / 1000)
	}
	if c.Cohorts < 1 {
		c.Cohorts = 1
	}
	if c.Cohorts > 65536 {
		c.Cohorts = 65536
	}
	if uint64(c.Cohorts) > c.Users {
		c.Cohorts = int(c.Users)
	}
	return c
}

// pendBatch is one tick's worth of requests that arrived while service was
// down, held open-loop until resume (or end of run). Batches within a tick
// coalesce, so the pending list is bounded by the run's tick count.
type pendBatch struct {
	at time.Duration
	n  uint64
}

// interval accumulates one goodput-scoring window. lost counts timed-out
// and failed requests; served counts completions (including late ones,
// attributed to their arrival interval).
type interval struct {
	offered uint64
	served  uint64
	lost    uint64
}

// Engine runs one simulated population against one run's virtual clock.
// It is built once per campaign image and re-armed per run with Start
// (after the snapshot restore, like the NetBench sender) — all internal
// slices are retained across runs, so steady-state operation allocates
// nothing.
type Engine struct {
	cfg Config // normalized

	clk *simclock.Clock
	tel *telemetry.Telemetry

	cohorts []cohort
	wheel   wheel
	slo     SLO

	startAt     time.Duration
	stopAt      time.Duration
	periodTicks uint64
	baseUs      uint64
	timeoutUs   uint64

	down      bool
	downSince time.Duration

	pend  []pendBatch
	ivals []interval

	// lastGaugeIval tracks the live goodput gauge's interval cursor.
	lastGaugeIval int

	// chainLive is true while the tick event chain is scheduled; it is
	// the authoritative "may Cancel tickEv" flag (the handle alone is
	// unsafe to interrogate once the chain self-terminates, because the
	// clock recycles fired events).
	chainLive bool
	tickEv    *simclock.Event
	onTickFn  simclock.Func
}

// New builds an engine for cfg (normalized with defaults). The cohort slab
// is allocated here, once; Start re-seeds it per run.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		cohorts: make([]cohort, cfg.Cohorts),
	}
	e.onTickFn = e.onTick
	return e
}

// Config returns the normalized configuration the engine runs with.
func (e *Engine) Config() Config { return e.cfg }

// Start arms the engine against a run: seeds the cohorts phase-spread
// across one period, positions the wheel, zeroes the SLO, and schedules
// the first tick. Call it after the snapshot restore, exactly once per
// run; d is the measurement horizon (the benchmark duration).
func (e *Engine) Start(clk *simclock.Clock, tel *telemetry.Telemetry, d time.Duration) {
	cfg := e.cfg
	e.clk = clk
	e.tel = tel
	e.slo = SLO{Users: cfg.Users}
	e.startAt = clk.Now()
	e.stopAt = e.startAt + d
	e.periodTicks = uint64(cfg.Period / cfg.SlotWidth)
	e.baseUs = uint64(cfg.BaseLatency / time.Microsecond)
	e.timeoutUs = uint64(cfg.Timeout / time.Microsecond)
	e.down = false
	e.downSince = 0
	e.lastGaugeIval = 0

	numTicks := int(d / cfg.SlotWidth)
	if cap(e.pend) < numTicks+1 {
		e.pend = make([]pendBatch, 0, numTicks+1)
	}
	e.pend = e.pend[:0]
	nIvals := int((d + cfg.Interval - 1) / cfg.Interval)
	if nIvals < 1 {
		nIvals = 1
	}
	if cap(e.ivals) < nIvals {
		e.ivals = make([]interval, nIvals)
	}
	e.ivals = e.ivals[:nIvals]
	for i := range e.ivals {
		e.ivals[i] = interval{}
	}

	// Seed the population: cohort i's users are sized by even split (the
	// first Users%Cohorts cohorts take the remainder) and first fire at a
	// phase spread evenly across one period, starting at tick 1.
	e.wheel.init()
	nc := uint64(len(e.cohorts))
	base, rem := cfg.Users/nc, cfg.Users%nc
	for i := range e.cohorts {
		u := base
		if uint64(i) < rem {
			u++
		}
		e.cohorts[i].users = u
		due := 1 + (uint64(i)*e.periodTicks)/nc
		e.wheel.insert(e.cohorts, int32(i), due)
	}
	// Tick 0 is empty by construction (all dues ≥ 1); consume it so the
	// event firing at startAt + k·SlotWidth processes wheel tick k.
	e.wheel.advance(e.cohorts)

	if tel != nil {
		tel.SetGauge(telemetry.GaugeTrafficUsers, int64(cfg.Users))
	}
	if numTicks >= 1 {
		e.tickEv = clk.After(cfg.SlotWidth, tickTag, e.onTickFn)
		e.chainLive = true
	}
}

// ivalIndex maps a virtual time to its goodput interval, clamped into
// range (the boundary tick at exactly stopAt scores into the last one).
func (e *Engine) ivalIndex(at time.Duration) int {
	k := int((at - e.startAt) / e.cfg.Interval)
	if k >= len(e.ivals) {
		k = len(e.ivals) - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}

// fire processes one wheel tick at virtual time at: every due cohort's
// batch is offered, then either completed at base latency (service up) or
// held pending (service down), and the cohort is re-armed one period out.
// The entire batch path is integer adds into preallocated storage — zero
// allocations in steady state.
func (e *Engine) fire(at time.Duration) {
	head := e.wheel.advance(e.cohorts)
	if head == none {
		return
	}
	var n uint64
	for i := head; i != none; {
		co := &e.cohorts[i]
		next := co.next
		n += co.users
		e.wheel.insert(e.cohorts, i, co.due+e.periodTicks)
		i = next
	}
	e.slo.Offered += n
	k := e.ivalIndex(at)
	e.ivals[k].offered += n
	if e.down {
		if m := len(e.pend); m > 0 && e.pend[m-1].at == at {
			e.pend[m-1].n += n
		} else {
			e.pend = append(e.pend, pendBatch{at: at, n: n})
		}
	} else {
		e.slo.Completed += n
		e.slo.Latency.ObserveN(e.baseUs, n)
		e.ivals[k].served += n
	}
}

// onTick is the engine's only simclock callback: fire the current tick,
// refresh the live goodput gauge at interval boundaries, and reschedule
// until the measurement horizon (the event chain then self-terminates;
// reschedule-from-callback recycles the event, so ticking is alloc-free).
func (e *Engine) onTick() {
	now := e.clk.Now()
	e.fire(now)
	if k := e.ivalIndex(now); k > e.lastGaugeIval {
		// The gauge is live observability (served-so-far of the closed
		// interval; late completions land after close). The SLO's final
		// interval scores are computed from full data in Finish.
		iv := &e.ivals[e.lastGaugeIval]
		if iv.offered > 0 && e.tel != nil {
			e.tel.SetGauge(telemetry.GaugeTrafficGoodput, int64(iv.served*1000/iv.offered))
		}
		e.lastGaugeIval = k
	}
	if now+e.cfg.SlotWidth <= e.stopAt {
		e.tickEv = e.clk.After(e.cfg.SlotWidth, tickTag, e.onTickFn)
	} else {
		e.chainLive = false
		e.tickEv = nil
	}
}

// ServiceDown marks the service unavailable from now on (idempotent). The
// campaign wires it to the recovery engine's pause hook and to terminal
// hypervisor failure; requests arriving while down are held open-loop.
func (e *Engine) ServiceDown() {
	if e.down {
		return
	}
	e.down = true
	e.downSince = e.clk.Now()
	if e.downSince < e.stopAt {
		e.slo.Outages++
	}
}

// ServiceUp marks the service available again (idempotent): the outage
// window [downSince, now) is charged as population-wide degradation, and
// every held batch resolves — completed late if it is still inside the
// user deadline, timed out otherwise. Late completions and timeouts are
// attributed to their arrival interval, so goodput dips land where users
// experienced them.
func (e *Engine) ServiceUp() {
	if !e.down {
		return
	}
	e.down = false
	now := e.clk.Now()
	e.accountOutage(now)
	for bi := range e.pend {
		b := &e.pend[bi]
		waitUs := uint64((now - b.at) / time.Microsecond)
		k := e.ivalIndex(b.at)
		if waitUs+e.baseUs > e.timeoutUs {
			e.slo.TimedOut += b.n
			e.slo.ExcessWaitUs += b.n * e.timeoutUs
			e.ivals[k].lost += b.n
		} else {
			e.slo.Completed += b.n
			e.slo.Delayed += b.n
			e.slo.ExcessWaitUs += b.n * waitUs
			e.slo.Latency.ObserveN(waitUs+e.baseUs, b.n)
			e.ivals[k].served += b.n
		}
	}
	e.pend = e.pend[:0]
}

// accountOutage charges the outage window [downSince, until), clamped to
// the measurement horizon, as outage time and user-µs of degradation.
// Users × window stays far inside uint64 (and inside JSON-exact 2^53) for
// any plausible population and run length: 10M users × 1000s ≈ 10^16.
func (e *Engine) accountOutage(until time.Duration) {
	start, end := e.downSince, until
	if end > e.stopAt {
		end = e.stopAt
	}
	if start >= end {
		return
	}
	us := uint64((end - start) / time.Microsecond)
	e.slo.OutageUs += us
	e.slo.DegradedUserUs += us * e.cfg.Users
}

// Finish closes the run at the nominal measurement horizon (Start's d) and
// returns the run's SLO (owned by the engine; the caller copies it out).
// It is purely arithmetic, so it works identically whether the run
// completed or the clock halted early on terminal failure: ticks the
// halted clock never dispatched are drained synthetically (their requests
// were still offered — the users don't know the host died), an open outage
// is charged through the horizon, and still-held batches resolve as timed
// out (the user's deadline passed) or failed (the run ended first).
func (e *Engine) Finish() *SLO {
	end := e.stopAt
	if e.chainLive {
		e.clk.Cancel(e.tickEv)
		e.chainLive = false
		e.tickEv = nil
	}
	for {
		at := e.startAt + time.Duration(e.wheel.cur)*e.cfg.SlotWidth
		if at > end {
			break
		}
		e.fire(at)
	}
	if e.down {
		e.accountOutage(end)
	}
	for bi := range e.pend {
		b := &e.pend[bi]
		ageUs := uint64((end - b.at) / time.Microsecond)
		k := e.ivalIndex(b.at)
		e.ivals[k].lost += b.n
		if ageUs+e.baseUs > e.timeoutUs {
			e.slo.TimedOut += b.n
			e.slo.ExcessWaitUs += b.n * e.timeoutUs
		} else {
			e.slo.Failed += b.n
			e.slo.ExcessWaitUs += b.n * ageUs
		}
	}
	e.pend = e.pend[:0]

	worst := uint64(1000)
	var scored, degraded uint64
	for i := range e.ivals {
		iv := &e.ivals[i]
		if iv.offered == 0 {
			continue
		}
		scored++
		if p := iv.served * 1000 / iv.offered; p < worst {
			worst = p
		}
		if iv.lost*10 > iv.offered {
			degraded++
		}
	}
	e.slo.Intervals = scored
	e.slo.DegradedIntervals = degraded
	if scored > 0 {
		e.slo.WorstIntervalPermille = worst
	}

	if e.tel != nil {
		e.tel.Hists[telemetry.HistRequestLatencyUs].Merge(&e.slo.Latency)
		e.tel.SetGauge(telemetry.GaugeTrafficGoodput, int64(e.slo.GoodputPermille()))
	}
	return &e.slo
}
