package dom

import (
	"errors"
	"testing"

	"nilihype/internal/locking"
	"nilihype/internal/sched"
)

func TestFailFirstReasonWins(t *testing.T) {
	d := &Domain{ID: 1}
	d.Fail("first")
	d.Fail("second")
	if !d.Failed || d.FailReason != "first" {
		t.Fatalf("failed=%v reason=%q", d.Failed, d.FailReason)
	}
}

func TestUpcallVCPU(t *testing.T) {
	reg := locking.NewRegistry()
	s := sched.NewScheduler(1, reg)
	v := s.AddVCPU(1, 0, 0)
	d := &Domain{ID: 1, VCPUs: []*sched.VCPU{v}}
	if got := d.UpcallVCPU(); got != v {
		t.Fatalf("UpcallVCPU = %v, want vcpu", got)
	}
	empty := &Domain{ID: 2}
	if got := empty.UpcallVCPU(); got != nil {
		t.Fatal("UpcallVCPU with no vCPUs returned a vCPU")
	}
}

func TestListInsertRemoveByID(t *testing.T) {
	l := NewList()
	a := &Domain{ID: 0, IsPriv: true}
	b := &Domain{ID: 1}
	l.Insert(a)
	l.Insert(b)
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	got, err := l.ByID(1)
	if err != nil || got != b {
		t.Fatalf("ByID(1) = %v, %v", got, err)
	}
	if _, err := l.ByID(9); err == nil {
		t.Fatal("ByID(9) succeeded")
	}
	l.Remove(a)
	if l.Len() != 1 {
		t.Fatalf("Len after remove = %d", l.Len())
	}
	l.Remove(a) // idempotent
	all, err := l.All()
	if err != nil || len(all) != 1 || all[0] != b {
		t.Fatalf("All = %v, %v", all, err)
	}
}

func TestListCorruptionFailsTraversals(t *testing.T) {
	l := NewList()
	l.Insert(&Domain{ID: 0})
	l.Corrupted = true
	if _, err := l.ByID(0); !errors.Is(err, ErrListCorrupted) {
		t.Fatalf("ByID err = %v, want ErrListCorrupted", err)
	}
	if _, err := l.All(); !errors.Is(err, ErrListCorrupted) {
		t.Fatalf("All err = %v, want ErrListCorrupted", err)
	}
	if l.Len() != 1 {
		t.Fatal("Len must work on corrupted list (separate bookkeeping)")
	}
	l.Rebuild()
	if _, err := l.ByID(0); err != nil {
		t.Fatalf("ByID after rebuild: %v", err)
	}
}
