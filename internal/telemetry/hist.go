package telemetry

import "math/bits"

// NumBuckets is the fixed bucket count of every histogram. Buckets are
// power-of-two ("HDR-style"): bucket 0 holds the value 0, bucket i (i ≥ 1)
// holds values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1].
// The last bucket additionally absorbs everything wider (the overflow
// bucket), so no observation is ever lost.
const NumBuckets = 32

// OverflowBucket is the index of the final, open-ended bucket.
const OverflowBucket = NumBuckets - 1

// Hist is a fixed-size power-of-two histogram. It is a plain value type —
// no pointers, no allocation — so arrays of histograms snapshot by
// assignment and merge by integer adds. All fields are exact integers:
// Merge is associative and commutative bit-for-bit, which is what lets
// campaign shards combine in any order and still produce identical
// summaries.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [NumBuckets]uint64
}

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v uint64) int {
	b := bits.Len64(v)
	if b > OverflowBucket {
		return OverflowBucket
	}
	return b
}

// BucketUpperBound returns the largest value bucket i can hold (MaxUint64
// for the overflow bucket).
func BucketUpperBound(i int) uint64 {
	if i >= OverflowBucket {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[BucketIndex(v)]++
}

// ObserveN records n observations of the same value v in O(1) — the batch
// form the traffic engine's cohort accounting depends on: a million users
// arriving in one wheel slot cost one bucket add, not a million. Exactly
// equivalent to calling Observe(v) n times (all fields are integer adds
// plus a max), so batched and per-request recording stay bit-identical.
func (h *Hist) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	h.Count += n
	h.Sum += v * n
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[BucketIndex(v)] += n
}

// Merge folds other into h. Integer adds plus a max: associative,
// commutative, and bit-exact regardless of merge order.
func (h *Hist) Merge(other *Hist) {
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper bound of the bucket containing the ceil(q·Count)-th smallest
// observation, capped at the exact observed Max. Power-of-two buckets make
// this a ≤2× overestimate at worst; Max is exact, so Quantile(1) == Max.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if cum >= rank {
			ub := BucketUpperBound(i)
			if ub > h.Max {
				return h.Max
			}
			return ub
		}
	}
	return h.Max
}

// Mean returns the exact arithmetic mean of observations (0 if empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
