package campaign

import (
	"testing"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/inject"
	"nilihype/internal/prng"
	"nilihype/internal/simclock"
)

// TestFutureWorkMultipleVCPUsPerCPU exercises the configuration the paper
// leaves as future work (§IX: "evaluation with more complex
// configurations, that include multiple vCPUs per CPU"): two UnixBench
// AppVMs pinned to the same physical CPU, sharing it through the credit
// scheduler's preemption path. Recovery must still work — the scheduler
// repair reconciles the richer runqueue state.
func TestFutureWorkMultipleVCPUsPerCPU(t *testing.T) {
	successes, detected := 0, 0
	for seed := uint64(1); seed <= 10; seed++ {
		clk := simclock.New()
		h, err := hv.New(clk, hv.Config{
			Machine:        hw.Config{CPUs: 4, MemoryMB: 1024, BlockSvc: 200 * time.Microsecond, NICLat: 30 * time.Microsecond},
			HeapFrames:     8192,
			LoggingEnabled: true,
			RecoveryPrep:   true,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Boot(); err != nil {
			t.Fatal(err)
		}
		h.SetSchedFluxProb(hv.DefaultSchedFluxProb)
		world := guest.NewWorld(h, seed^0x5eed)
		world.StartPrivVM()

		// Both AppVMs pinned to CPU 1: two vCPUs share one physical CPU.
		const benchDur = 2 * time.Second
		a, err := world.AddAppVM(guest.Config{Kind: guest.UnixBench, Dom: 1, CPU: 1, Duration: benchDur})
		if err != nil {
			t.Fatal(err)
		}
		b, err := world.AddAppVM(guest.Config{Kind: guest.UnixBench, Dom: 2, CPU: 1, Duration: benchDur})
		if err != nil {
			t.Fatal(err)
		}
		engine := core.NewEngine(h, core.DefaultConfig())
		det := detect.New(h, engine.OnDetection)
		engine.Det = det
		det.Start()
		world.StartAll()

		injector := inject.New(h, world, prng.New(seed, 0xfa17), inject.Params{
			Type:       inject.Failstop,
			WindowLo:   benchDur / 10,
			WindowHi:   benchDur / 2,
			AppDomains: []int{1, 2},
		})
		injector.Schedule()
		clk.RunUntil(benchDur + time.Second)

		if engine.FirstDetection == nil {
			continue
		}
		detected++
		if engine.Recovered() && engine.FailReason == "" {
			aOK, _ := a.Verdict()
			bOK, _ := b.Verdict()
			if aOK && bOK && !world.PrivVMFailed() {
				successes++
			}
		}
	}
	if detected < 8 {
		t.Fatalf("only %d/10 runs detected", detected)
	}
	// The configuration must not collapse: a clear majority of
	// recoveries succeed with both shared-CPU VMs intact.
	if successes*2 < detected {
		t.Fatalf("shared-CPU recoveries: %d/%d succeeded", successes, detected)
	}
	t.Logf("shared-CPU (2 vCPUs on 1 CPU): %d/%d recoveries fully successful", successes, detected)
}

// TestSharedCPUCleanRun: the shared-CPU configuration is stable without
// faults (both benchmarks complete through preemptive time-sharing).
func TestSharedCPUCleanRun(t *testing.T) {
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 4, MemoryMB: 1024, BlockSvc: 200 * time.Microsecond, NICLat: 30 * time.Microsecond},
		HeapFrames:     8192,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	world := guest.NewWorld(h, 5)
	a, _ := world.AddAppVM(guest.Config{Kind: guest.UnixBench, Dom: 1, CPU: 1, Duration: 400 * time.Millisecond})
	b, _ := world.AddAppVM(guest.Config{Kind: guest.UnixBench, Dom: 2, CPU: 1, Duration: 400 * time.Millisecond})
	world.StartAll()
	clk.RunUntil(2 * time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	for _, vm := range []*guest.AppVM{a, b} {
		if ok, reason := vm.Verdict(); !ok {
			t.Fatalf("dom%d: %s (ops=%d)", vm.Cfg.Dom, reason, vm.OpsCompleted)
		}
	}
	// Preemption actually happened: both vCPUs took turns on CPU 1.
	if got := h.Sched.CheckConsistency(); len(got) != 0 {
		t.Fatalf("inconsistencies: %v", got)
	}
}
