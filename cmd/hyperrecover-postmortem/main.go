// Command hyperrecover-postmortem runs a fault-injection campaign and
// performs automatic failure forensics on every run whose recovery story
// went wrong — failed, escalated, or degraded to keep the host alive. For
// each such run it assembles a post-mortem bundle (the causal recovery
// journal, the corrupted structural cells, the per-attempt outage windows,
// the flight-recorder tail, the SLO damage) and classifies a root cause;
// the report is the per-fault-class root-cause matrix, the host-health
// trajectory, and the N lowest-seed bundles in full.
//
// Examples:
//
//	hyperrecover-postmortem -fault ioapic -runs 200
//	hyperrecover-postmortem -fault privvm-crash -ladder hybrid -runs 50 -bundles 2
//	hyperrecover-postmortem -fault failstop -runs 500 -format json > postmortem.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/health"
	"nilihype/internal/inject"
	"nilihype/internal/report"
	"nilihype/internal/traffic"
)

func main() {
	var o options
	flag.StringVar(&o.Fault, "fault", "failstop",
		"fault type: failstop | register | code | privvm-crash | privvm-hang | ioapic")
	flag.StringVar(&o.Ladder, "ladder", "microreset",
		"recovery ladder: microreset | microreboot | hybrid | full")
	flag.IntVar(&o.Runs, "runs", 100, "campaign size")
	flag.Uint64Var(&o.SeedBase, "seed-base", 0, "first seed is seed-base+1")
	flag.IntVar(&o.Parallel, "parallel", 0, "worker parallelism (0 = GOMAXPROCS)")
	flag.IntVar(&o.Bundles, "bundles", 3, "post-mortem bundles to print in full (lowest seeds first)")
	flag.Uint64Var(&o.Users, "users", 0, "simulated end-user population per run (0 = traffic off)")
	flag.StringVar(&o.Format, "format", "text", "output format: text | json")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-postmortem:", err)
		os.Exit(1)
	}
}

type options struct {
	Fault    string
	Ladder   string
	Runs     int
	SeedBase uint64
	Parallel int
	Bundles  int
	Users    uint64
	Format   string
}

func parseFault(s string) (inject.FaultType, error) {
	switch strings.ToLower(s) {
	case "failstop":
		return inject.Failstop, nil
	case "register":
		return inject.Register, nil
	case "code":
		return inject.Code, nil
	case "privvm-crash":
		return inject.PrivVMCrash, nil
	case "privvm-hang":
		return inject.PrivVMHang, nil
	case "ioapic", "device":
		return inject.DeviceIOAPIC, nil
	default:
		return 0, fmt.Errorf("unknown fault type %q", s)
	}
}

func parseLadder(s string) (core.Config, error) {
	switch strings.ToLower(s) {
	case "microreset", "nilihype":
		return core.Config{Mechanism: core.Microreset, Enhancements: core.AllEnhancements}, nil
	case "microreboot", "rehype":
		return core.Config{Mechanism: core.Microreboot, Enhancements: core.AllEnhancements}, nil
	case "hybrid":
		return core.HybridConfig(), nil
	case "full", "full-ladder":
		return core.FullLadderConfig(), nil
	default:
		return core.Config{}, fmt.Errorf("unknown ladder %q", s)
	}
}

// jsonReport is the machine-readable document -format json emits.
type jsonReport struct {
	Runs       int                                  `json:"runs"`
	RootCauses map[string]int                       `json:"root_causes,omitempty"`
	ByClass    map[string]*campaign.FaultClassStats `json:"fault_classes,omitempty"`
	Health     health.Report                        `json:"health"`
	Bundles    []campaign.Bundle                    `json:"bundles,omitempty"`
}

func run(o options, w io.Writer) error {
	ft, err := parseFault(o.Fault)
	if err != nil {
		return err
	}
	ladder, err := parseLadder(o.Ladder)
	if err != nil {
		return err
	}
	format, err := report.ParseFormat(o.Format)
	if err != nil {
		return err
	}
	if format != report.Text && format != report.JSON {
		return fmt.Errorf("format %v not supported (want text or json)", format)
	}

	// Collect every wrong run's bundle during execution (OnResult runs
	// under the campaign's mutex); trim to the N lowest seeds afterwards
	// so the selection is deterministic whatever the completion order.
	var bundles []campaign.Bundle
	c := campaign.Campaign{
		Base: campaign.RunConfig{
			Setup: campaign.ThreeAppVM, Fault: ft, Logging: true,
			Recovery:      ladder,
			BenchDuration: 2 * time.Second,
			Traffic:       traffic.Config{Users: o.Users},
		},
		Runs:        o.Runs,
		SeedBase:    o.SeedBase,
		Parallelism: o.Parallel,
		OnResult: func(r campaign.Result) {
			if b, ok := campaign.AssembleBundle(r); ok {
				bundles = append(bundles, b)
			}
		},
	}
	sum := c.Execute()
	sort.Slice(bundles, func(i, j int) bool { return bundles[i].Seed < bundles[j].Seed })
	if o.Bundles >= 0 && len(bundles) > o.Bundles {
		bundles = bundles[:o.Bundles]
	}
	hrep := sum.HealthReport(health.Config{})

	if format == report.JSON {
		doc := jsonReport{
			Runs:       sum.Runs,
			RootCauses: sum.RootCauses,
			ByClass:    sum.FaultClasses,
			Health:     hrep,
			Bundles:    bundles,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprint(w, sum.Format())
	fmt.Fprintln(w)
	fmt.Fprint(w, sum.FormatRootCauseMatrix())
	fmt.Fprintln(w)
	fmt.Fprint(w, hrep.Format())
	for i := range bundles {
		fmt.Fprintf(w, "\n== post-mortem %d/%d ==\n", i+1, len(bundles))
		fmt.Fprint(w, bundles[i].Format())
	}
	return nil
}
