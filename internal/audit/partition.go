package audit

import (
	"fmt"
	"time"

	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/hv"
	"nilihype/internal/recdomain"
	"nilihype/internal/telemetry"
)

// Modeled per-unit costs of the partitioned walk. Together they itemize
// the monolithic walk's flat base cost across recovery domains: the
// global structures keep fixed costs, the per-CPU and per-guest walks
// charge per domain, and the serialized linkage-apply step pays a fixed
// coordination cost. The totals are deliberately close to — not exactly —
// the monolithic auditBaseCost, since the partition does strictly more
// bookkeeping.
const (
	costDomainList  = 60 * time.Microsecond
	costScratch     = 40 * time.Microsecond
	costFreeList    = 80 * time.Microsecond
	costHeapObjects = 90 * time.Microsecond
	costLocks       = 30 * time.Microsecond
	costSched       = 120 * time.Microsecond
	costTimersCPU   = 20 * time.Microsecond
	costEvtchnScan  = 60 * time.Microsecond
	costGrantsGuest = 40 * time.Microsecond
	costLinkApply   = 70 * time.Microsecond
	costIOAPIC      = 25 * time.Microsecond
)

// evtchnPlan is one owner's read-only scan result: the ports found broken
// and, for those with a surviving backlink, the planned relink target.
// Scans run concurrently across owners because they write nothing; the
// serialized linkage-apply unit performs the writes in owner order with
// the same intactness recheck the monolithic walk applies at visit time.
type evtchnPlan struct {
	owner  int
	broken []int
	relink map[int][2]int
}

// runPartitioned is the recovery-domain audit walk selected by
// Options.RepairCPUs > 1. The dependency graph has three levels:
//
//  1. global (serial): domain list, static scratch, heap free list, live
//     heap objects, page frames, lock table — repairs later walks depend
//     on, plus structures with cross-domain reach.
//  2. domains (concurrent): scheduler metadata, each CPU's timer heap,
//     each guest's event-channel scan (read-only) and grant-count
//     rewrite. Units own disjoint state and never touch the virtual
//     clock, telemetry, or RNG streams.
//  3. linkage (serial): APIC reprogramming for repaired timer CPUs and
//     the event-channel relink/close/sacrifice writes planned by the
//     scans.
//
// Every unit reports into a private shard merged in plan order, so the
// Report is bit-identical whether the domain level executes on one
// goroutine (Options.SerialExec) or many.
func runPartitioned(h *hv.Hypervisor, opts Options) *Report {
	now := h.Clock.Now()
	doms := h.Domains.Preserved()
	ncpu := h.Timers.NumCPUs()
	owners := h.Broker.Owners()
	gdom := recdomain.Domain{Kind: recdomain.Global}

	var shards []*Report
	shard := func() *Report {
		s := &Report{}
		shards = append(shards, s)
		return s
	}

	global := recdomain.Level{Name: "global", Serial: true}
	addGlobal := func(name string, cost time.Duration, fn func(sr *Report)) {
		sr := shard()
		global.Units = append(global.Units, recdomain.Unit{
			Dom: gdom, Name: name, Cost: cost, Run: func() { fn(sr) },
		})
	}

	addGlobal("audit.domain-list", costDomainList, func(sr *Report) {
		if err := h.Domains.CheckLinks(); err != nil {
			fixed := h.Domains.Rebuild()
			sr.add(ClassDomainList, fmt.Sprintf("relinked from %d preserved structures (%d links fixed)", len(doms), fixed), Repaired)
		}
	})
	addGlobal("audit.static-scratch", costScratch, func(sr *Report) {
		if damaged := h.StaticScratchDamage(); len(damaged) > 0 {
			for _, w := range damaged {
				sr.add(ClassStaticScratch, fmt.Sprintf("scratch word %d does not match boot pattern", w), Repaired)
			}
			h.ReinitStaticScratch()
		}
	})
	addGlobal("audit.heap-freelist", costFreeList, func(sr *Report) {
		if probs := h.Heap.ValidateFreeList(); len(probs) > 0 {
			for _, p := range probs {
				sr.add(ClassHeapFreeList, p, Repaired)
			}
			h.Heap.Rebuild()
		}
	})
	addGlobal("audit.heap-objects", costHeapObjects, func(sr *Report) {
		for _, o := range h.Heap.DamagedObjects() {
			var owner *dom.Domain
			for _, d := range doms {
				if d.Obj == o {
					owner = d
					break
				}
			}
			if owner != nil && !owner.IsPriv {
				o.Repair()
				owner.Fail("heap object corrupted; VM sacrificed by recovery audit")
				sr.Sacrificed = append(sr.Sacrificed, owner.ID)
				sr.add(ClassHeapObject, fmt.Sprintf("object %q re-initialized; d%d sacrificed", o.Tag, owner.ID), Degraded)
				continue
			}
			sr.add(ClassHeapObject, fmt.Sprintf("object %q damaged and not confinable", o.Tag), Escalate)
		}
	})
	if !opts.SkipFrames {
		addGlobal("audit.pf-descriptors", opts.FrameScanCost, func(sr *Report) {
			if bad := h.Frames.InconsistentFrames(); len(bad) > 0 {
				fixed := h.Frames.ScanAndRepair()
				sr.add(ClassFrames, fmt.Sprintf("%d inconsistent descriptors rewritten", fixed), Repaired)
			}
		})
	}
	addGlobal("audit.lock-table", costLocks, func(sr *Report) {
		for _, l := range h.Locks.HeldLocks() {
			l.ForceRelease()
			sr.add(ClassLocks, fmt.Sprintf("%s lock %q held by discarded thread", l.Kind(), l.Name()), Repaired)
		}
	})

	domains := recdomain.Level{Name: "domains"}
	apicTouched := make([]bool, ncpu)
	plans := make([]*evtchnPlan, len(owners))

	if !opts.SkipSched {
		sr := shard()
		domains.Units = append(domains.Units, recdomain.Unit{
			Dom: gdom, Name: "audit.sched", Cost: costSched, Run: func() {
				if incs := h.Sched.CheckConsistency(); len(incs) > 0 {
					fixed := h.Sched.RepairFromPerCPU()
					sr.add(ClassSched, fmt.Sprintf("%d inconsistencies; %d fields rewritten from per-CPU state", len(incs), fixed), Repaired)
				}
			},
		})
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		cpu := cpu
		sr := shard()
		domains.Units = append(domains.Units, recdomain.Unit{
			Dom:  recdomain.Domain{Kind: recdomain.PerCPU, ID: cpu},
			Name: fmt.Sprintf("audit.timers.cpu%d", cpu), Cost: costTimersCPU,
			Run: func() {
				if probs := h.Timers.CheckHealthOn(cpu, now); len(probs) > 0 {
					fixed := h.Timers.RepairHeapOn(cpu, now)
					for _, p := range probs {
						sr.add(ClassTimers, fmt.Sprintf("%s (clamped; %d deadlines fixed)", p, fixed), Repaired)
					}
					apicTouched[cpu] = true
				}
				if inactive := h.Timers.InactiveRecurringOn(cpu); len(inactive) > 0 {
					names := make([]string, len(inactive))
					for i, t := range inactive {
						names[i] = t.Name
					}
					n := h.Timers.ReactivateRecurringOn(cpu, now)
					sr.add(ClassTimers, fmt.Sprintf("cpu%d: %d recurring timers dead (%v); reactivated", cpu, n, names), Repaired)
					apicTouched[cpu] = true
				}
			},
		})
	}
	for i, o := range owners {
		i, o := i, o
		domains.Units = append(domains.Units, recdomain.Unit{
			Dom:  recdomain.Domain{Kind: recdomain.PerGuest, ID: o},
			Name: fmt.Sprintf("audit.evtchn.scan.d%d", o), Cost: costEvtchnScan,
			Run:  func() { plans[i] = scanEvtchnOwner(h, o) },
		})
	}
	for _, d := range doms {
		d := d
		if d.GrantTab == nil {
			continue
		}
		sr := shard()
		domains.Units = append(domains.Units, recdomain.Unit{
			Dom:  recdomain.Domain{Kind: recdomain.PerGuest, ID: d.ID},
			Name: fmt.Sprintf("audit.grants.d%d", d.ID), Cost: costGrantsGuest,
			Run:  func() { auditGrantsFor(d, doms, sr) },
		})
	}

	linkage := recdomain.Level{Name: "linkage", Serial: true}
	{
		// The IO-APIC is shared hardware: its route check/reprogram runs at
		// the serial linkage level, so the partitioned walk's result is
		// bit-identical at any worker count.
		sr := shard()
		linkage.Units = append(linkage.Units, recdomain.Unit{
			Dom: gdom, Name: "audit.ioapic", Cost: costIOAPIC,
			Run: func() { auditIOAPIC(h, sr) },
		})
	}
	{
		sr := shard()
		linkage.Units = append(linkage.Units, recdomain.Unit{
			Dom: gdom, Name: "audit.linkage.apply", Cost: costLinkApply,
			Run: func() {
				for cpu := 0; cpu < ncpu; cpu++ {
					if apicTouched[cpu] {
						h.Timers.ProgramAPIC(cpu)
					}
				}
				applyEvtchnPlans(h, doms, plans, sr)
			},
		})
	}

	workers := opts.RepairCPUs
	if opts.SerialExec {
		workers = 1
	}
	plan := recdomain.Plan{Levels: []recdomain.Level{global, domains, linkage}}
	tm := plan.Execute(opts.RepairCPUs, workers)

	r := &Report{Timing: tm}
	for _, s := range shards {
		r.Violations = append(r.Violations, s.Violations...)
		r.Repaired += s.Repaired
		r.Escalations += s.Escalations
		r.Sacrificed = append(r.Sacrificed, s.Sacrificed...)
	}

	degraded := len(r.Violations) - r.Repaired - r.Escalations
	h.Tel.Inc(telemetry.CtrAuditRuns)
	h.Tel.Add(telemetry.CtrAuditViolations, uint64(len(r.Violations)))
	h.Tel.Add(telemetry.CtrAuditRepairs, uint64(r.Repaired))
	h.Tel.Add(telemetry.CtrAuditDegraded, uint64(degraded))
	h.Tel.Add(telemetry.CtrAuditEscalate, uint64(r.Escalations))
	h.Tel.Record(0, telemetry.EvAudit, telemetry.AuditArg(len(r.Violations), r.Repaired, r.Escalations))
	return r
}

// scanEvtchnOwner finds one owner's broken inter-domain ports and the
// backlink repair targets visible in the pre-repair state. Read-only over
// every event-channel table, so scans for distinct owners may run
// concurrently.
func scanEvtchnOwner(h *hv.Hypervisor, o int) *evtchnPlan {
	pl := &evtchnPlan{owner: o}
	t := h.Broker.Table(o)
	if t == nil {
		return pl
	}
	for p := 1; p < t.Len(); p++ {
		port, _ := t.Port(p)
		if port.State != evtchn.Interdomain || linkIntact(h, o, p, port) {
			continue
		}
		pl.broken = append(pl.broken, p)
		if qd, q, ok := h.Broker.FindBacklink(o, p); ok {
			if pl.relink == nil {
				pl.relink = make(map[int][2]int)
			}
			pl.relink[p] = [2]int{qd, q}
		}
	}
	return pl
}

// applyEvtchnPlans performs the writes the concurrent scans planned, in
// owner order, rechecking intactness at visit time exactly as the
// monolithic walk does: an earlier relink can heal a later port's pair,
// in which case the planned write is dropped. Pass 1 relinks via the
// scanned backlinks; pass 2 closes ports still broken and sacrifices
// AppVMs whose I/O ring channel is lost.
func applyEvtchnPlans(h *hv.Hypervisor, doms []*dom.Domain, plans []*evtchnPlan, r *Report) {
	domByID := make(map[int]*dom.Domain, len(doms))
	for _, d := range doms {
		domByID[d.ID] = d
	}
	for _, pl := range plans {
		if pl == nil || pl.relink == nil {
			continue
		}
		t := h.Broker.Table(pl.owner)
		for _, p := range pl.broken {
			rl, ok := pl.relink[p]
			if !ok {
				continue
			}
			port, err := t.Port(p)
			if err != nil || port.State != evtchn.Interdomain || linkIntact(h, pl.owner, p, port) {
				continue
			}
			port.RemoteDom, port.RemotePort = rl[0], rl[1]
			r.add(ClassEvtchn, fmt.Sprintf("d%d port %d relinked to d%d port %d via backlink", pl.owner, p, rl[0], rl[1]), Repaired)
		}
	}
	for _, pl := range plans {
		if pl == nil {
			continue
		}
		t := h.Broker.Table(pl.owner)
		for _, p := range pl.broken {
			port, err := t.Port(p)
			if err != nil || port.State != evtchn.Interdomain || linkIntact(h, pl.owner, p, port) {
				continue
			}
			_ = t.Close(p)
			d := domByID[pl.owner]
			if d != nil && !d.IsPriv && d.RingPort == p {
				d.Fail("I/O ring event channel lost; VM sacrificed by recovery audit")
				r.Sacrificed = append(r.Sacrificed, d.ID)
				r.add(ClassEvtchn, fmt.Sprintf("d%d ring port %d unrecoverable; closed, d%d sacrificed", pl.owner, p, d.ID), Degraded)
				continue
			}
			r.add(ClassEvtchn, fmt.Sprintf("d%d port %d unrecoverable; closed", pl.owner, p), Repaired)
		}
	}
}

// auditGrantsFor recomputes granter d's grant-entry mapping counts from
// every preserved domain's maptrack table and rewrites disagreements. It
// reads all maptracks (no concurrent unit writes them) and writes only
// d's grant table, so per-guest units are mutually disjoint.
func auditGrantsFor(d *dom.Domain, doms []*dom.Domain, r *Report) {
	expected := make(map[int]int)
	for _, m := range doms {
		if m.Maptrack == nil {
			continue
		}
		for _, mp := range m.Maptrack.Mappings() {
			if mp.GranterDom == d.ID {
				expected[mp.Ref]++
			}
		}
	}
	for ref := 0; ref < d.GrantTab.Len(); ref++ {
		e, err := d.GrantTab.Entry(ref)
		if err != nil {
			continue
		}
		want := expected[ref]
		if e.MapCount != want {
			r.add(ClassGrant, fmt.Sprintf("d%d grant ref %d map count %d, maptrack says %d; rewritten", d.ID, ref, e.MapCount, want), Repaired)
			e.MapCount = want
		}
	}
}
