package recdomain

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func unit(dom Domain, name string, cost time.Duration, fn func()) Unit {
	return Unit{Dom: dom, Name: name, Cost: cost, Run: fn}
}

func TestScheduleSerialLevelKeepsUnitOrder(t *testing.T) {
	p := Plan{Levels: []Level{{Name: "g", Serial: true, Units: []Unit{
		unit(Domain{Kind: Global}, "a", 3*time.Millisecond, nil),
		unit(Domain{Kind: Global}, "b", 1*time.Millisecond, nil),
		unit(Domain{Kind: Global}, "c", 2*time.Millisecond, nil),
	}}}}
	tm := p.Execute(8, 4)
	if tm.Serial != 6*time.Millisecond || tm.Parallel != 6*time.Millisecond {
		t.Fatalf("serial level: Serial=%v Parallel=%v, want both 6ms", tm.Serial, tm.Parallel)
	}
	wantStarts := []time.Duration{0, 3 * time.Millisecond, 4 * time.Millisecond}
	for i, sp := range tm.Spans {
		if sp.Start != wantStarts[i] {
			t.Fatalf("span %d starts at %v, want %v", i, sp.Start, wantStarts[i])
		}
	}
}

func TestScheduleMakespanLPT(t *testing.T) {
	// Costs 5,4,3,3,3 on 2 lanes: LPT packs 5+3 and 4+3+3 → makespan 10.
	var units []Unit
	for i, c := range []int{5, 4, 3, 3, 3} {
		units = append(units, unit(Domain{Kind: PerCPU, ID: i}, "u", time.Duration(c)*time.Millisecond, nil))
	}
	tm := Plan{Levels: []Level{{Units: units}}}.Execute(2, 1)
	if tm.Parallel != 10*time.Millisecond {
		t.Fatalf("makespan = %v, want 10ms", tm.Parallel)
	}
	if tm.Serial != 18*time.Millisecond {
		t.Fatalf("serial = %v, want 18ms", tm.Serial)
	}
	if tm.Units != 5 || tm.Domains != 5 {
		t.Fatalf("units/domains = %d/%d, want 5/5", tm.Units, tm.Domains)
	}
}

func TestLevelsAreBarriers(t *testing.T) {
	// Level 2's units observe every level-1 effect regardless of worker
	// count: the executor joins each level before starting the next.
	for _, workers := range []int{1, 4} {
		var first atomic.Int64
		var sawAtSecond []int64
		lv1 := Level{Name: "first"}
		for i := 0; i < 16; i++ {
			lv1.Units = append(lv1.Units, unit(Domain{Kind: PerCPU, ID: i}, "inc", time.Microsecond,
				func() { first.Add(1) }))
		}
		lv2 := Level{Name: "second", Serial: true, Units: []Unit{
			unit(Domain{Kind: Global}, "read", time.Microsecond,
				func() { sawAtSecond = append(sawAtSecond, first.Load()) }),
		}}
		Plan{Levels: []Level{lv1, lv2}}.Execute(8, workers)
		if len(sawAtSecond) != 1 || sawAtSecond[0] != 16 {
			t.Fatalf("workers=%d: level 2 saw %v level-1 effects, want [16]", workers, sawAtSecond)
		}
	}
}

func TestTimingIndependentOfWorkers(t *testing.T) {
	build := func() Plan {
		var lv Level
		for i := 0; i < 11; i++ {
			lv.Units = append(lv.Units, unit(Domain{Kind: PerCPU, ID: i}, "u",
				time.Duration(i+1)*100*time.Microsecond, func() {}))
		}
		return Plan{Levels: []Level{
			{Name: "global", Serial: true, Units: []Unit{unit(Domain{Kind: Global}, "g", time.Millisecond, nil)}},
			lv,
		}}
	}
	a := build().Execute(4, 1)
	b := build().Execute(4, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("timing depends on worker count:\n 1 worker: %+v\n 8 workers: %+v", a, b)
	}
}

func TestExecuteRunsEveryUnitExactlyOnce(t *testing.T) {
	counts := make([]atomic.Int64, 32)
	var lv Level
	for i := 0; i < 32; i++ {
		i := i
		lv.Units = append(lv.Units, unit(Domain{Kind: PerGuest, ID: i}, "u", time.Microsecond,
			func() { counts[i].Add(1) }))
	}
	Plan{Levels: []Level{lv}}.Execute(8, 6)
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("unit %d ran %d times", i, n)
		}
	}
}

func TestSingleLaneParallelEqualsSerialSum(t *testing.T) {
	units := []Unit{
		unit(Domain{Kind: PerCPU, ID: 0}, "a", 2*time.Millisecond, nil),
		unit(Domain{Kind: PerCPU, ID: 1}, "b", 3*time.Millisecond, nil),
	}
	tm := Plan{Levels: []Level{{Units: units}}}.Execute(1, 1)
	if tm.Parallel != tm.Serial {
		t.Fatalf("1 simulated CPU must serialize: Parallel=%v Serial=%v", tm.Parallel, tm.Serial)
	}
}

func TestTimingMergeCountsDistinctDomains(t *testing.T) {
	a := Plan{Levels: []Level{{Units: []Unit{
		unit(Domain{Kind: PerCPU, ID: 0}, "a", time.Millisecond, nil),
		unit(Domain{Kind: Global}, "g", time.Millisecond, nil),
	}}}}.Execute(2, 1)
	b := Plan{Levels: []Level{{Units: []Unit{
		unit(Domain{Kind: PerCPU, ID: 0}, "b", time.Millisecond, nil),
		unit(Domain{Kind: PerGuest, ID: 1}, "d1", time.Millisecond, nil),
	}}}}.Execute(2, 1)
	a.Merge(b)
	if a.Domains != 3 {
		t.Fatalf("merged domains = %d, want 3 (cpu0 shared)", a.Domains)
	}
	if a.Units != 4 || len(a.Spans) != 4 {
		t.Fatalf("merged units/spans = %d/%d, want 4/4", a.Units, len(a.Spans))
	}
}
