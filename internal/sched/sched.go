// Package sched models Xen's credit scheduler state: per-CPU runqueues,
// vCPU execution states, and — critically for recovery — the redundant
// bookkeeping of which vCPU is running where.
//
// The paper (§V-A "Ensure consistency within scheduling metadata") calls
// out that this information is stored in multiple places: the per-CPU
// structure ("curr") plus two different locations in the per-vCPU structure
// (here: RunningOn and Processor). A fault or a discarded context switch
// leaves the three copies disagreeing; the consequences are either failed
// assertions in the scheduling path (hypervisor panic) or restoring the
// register context of one vCPU when another is scheduled (that VM fails).
// The recovery enhancement treats the per-CPU structure as the most
// reliable source and rewrites the per-vCPU copies from it.
package sched

import (
	"fmt"
	"math/rand/v2"

	"nilihype/internal/hw"
	"nilihype/internal/locking"
	"nilihype/internal/telemetry"
)

// State is a vCPU execution state.
type State int

// vCPU states.
const (
	Runnable State = iota + 1 // on a runqueue, waiting for a CPU
	Running                   // currently on a physical CPU
	Blocked                   // waiting for an event
	Offline                   // not yet up or torn down
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// NoCPU marks a vCPU that is not running anywhere.
const NoCPU = -1

// VCPU is one virtual CPU.
type VCPU struct {
	Domain int
	ID     int

	// State is the scheduler-visible execution state.
	State State

	// Processor is per-vCPU copy #1: the physical CPU this vCPU is
	// assigned to.
	Processor int

	// RunningOn is per-vCPU copy #2: the physical CPU this vCPU is
	// currently executing on, or NoCPU.
	RunningOn int

	// Context is the saved guest register file, restored when the vCPU
	// is scheduled. ContextValid is cleared if recovery loses it (the
	// FS/GS hazard contributes here).
	Context      [hw.NumRegs]uint64
	ContextValid bool

	// Credit is the credit-scheduler budget.
	Credit int

	// queued tracks runqueue membership to catch double-enqueue.
	queued bool
}

// Name returns a diagnostic identifier like "d2v0".
func (v *VCPU) Name() string { return fmt.Sprintf("d%dv%d", v.Domain, v.ID) }

// initialCredit is the credit-scheduler refill value.
const initialCredit = 300

// percpu is the scheduler's per-CPU structure.
type percpu struct {
	curr *VCPU // per-CPU copy: vCPU currently on this CPU (nil = idle)
	runq []*VCPU
	lock *locking.Lock
}

// Scheduler is the credit scheduler across all physical CPUs.
type Scheduler struct {
	cpus  []percpu
	vcpus []*VCPU

	// tel, when set (SetTelemetry), counts scheduling decisions. Nil
	// (standalone construction in tests) disables the counting.
	tel *telemetry.Telemetry
}

// SetTelemetry installs the telemetry sink for scheduler-decision
// counters.
func (s *Scheduler) SetTelemetry(tel *telemetry.Telemetry) { s.tel = tel }

// NewScheduler builds the scheduler. Per-CPU schedule locks are
// heap-allocated (Xen 4.x allocates schedule_data dynamically in
// cpu_schedule_up), so they are covered by the heap-lock release mechanism
// ReHype introduced and NiLiHype reuses — not by the static-lock segment.
func NewScheduler(cpus int, locks *locking.Registry) *Scheduler {
	s := &Scheduler{cpus: make([]percpu, cpus)}
	for i := range s.cpus {
		s.cpus[i].lock = locks.NewHeap(fmt.Sprintf("schedule_lock.cpu%d", i))
	}
	return s
}

// NumCPUs returns the physical CPU count.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// RunqueueLock returns cpu's schedule lock.
func (s *Scheduler) RunqueueLock(cpu int) *locking.Lock { return s.cpus[cpu].lock }

// AddVCPU registers a new vCPU pinned to cpu (the paper pins each vCPU to
// a distinct physical CPU, §VI-A) and enqueues it runnable.
func (s *Scheduler) AddVCPU(domain, id, cpu int) *VCPU {
	v := &VCPU{
		Domain:       domain,
		ID:           id,
		State:        Runnable,
		Processor:    cpu,
		RunningOn:    NoCPU,
		Credit:       initialCredit,
		ContextValid: true,
	}
	s.vcpus = append(s.vcpus, v)
	s.enqueue(cpu, v)
	return v
}

// RemoveVCPU tears a vCPU down (domain destruction).
func (s *Scheduler) RemoveVCPU(v *VCPU) {
	v.State = Offline
	if v.queued {
		s.dequeue(v.Processor, v)
	}
	for c := range s.cpus {
		if s.cpus[c].curr == v {
			s.cpus[c].curr = nil
		}
	}
	for i, vv := range s.vcpus {
		if vv == v {
			s.vcpus = append(s.vcpus[:i], s.vcpus[i+1:]...)
			break
		}
	}
	v.RunningOn = NoCPU
}

// VCPUs returns all registered vCPUs in registration order.
func (s *Scheduler) VCPUs() []*VCPU {
	out := make([]*VCPU, len(s.vcpus))
	copy(out, s.vcpus)
	return out
}

// Curr returns the vCPU the per-CPU structure says is on cpu (nil=idle).
func (s *Scheduler) Curr(cpu int) *VCPU { return s.cpus[cpu].curr }

// RunqueueLen returns the number of queued vCPUs on cpu.
func (s *Scheduler) RunqueueLen(cpu int) int { return len(s.cpus[cpu].runq) }

func (s *Scheduler) enqueue(cpu int, v *VCPU) {
	if v.queued {
		panic(fmt.Sprintf("sched: double enqueue of %s", v.Name()))
	}
	v.queued = true
	s.cpus[cpu].runq = append(s.cpus[cpu].runq, v)
}

func (s *Scheduler) dequeue(cpu int, v *VCPU) {
	q := s.cpus[cpu].runq
	for i, vv := range q {
		if vv == v {
			s.cpus[cpu].runq = append(q[:i], q[i+1:]...)
			v.queued = false
			return
		}
	}
	panic(fmt.Sprintf("sched: dequeue of %s not on runq %d", v.Name(), cpu))
}

// Wake marks a blocked vCPU runnable and enqueues it on its processor.
// Waking a non-blocked vCPU is a no-op (event races are normal).
func (s *Scheduler) Wake(v *VCPU) {
	if v.State != Blocked {
		return
	}
	s.tel.Inc(telemetry.CtrSchedWakes)
	v.State = Runnable
	s.enqueue(v.Processor, v)
}

// --- the context-switch state machine --------------------------------------
//
// Schedule is deliberately split into the same separately observable steps
// the real scheduler performs, because the injectable windows between them
// are what produce scheduling-metadata inconsistencies. The hypervisor
// layer sequences these steps and charges instructions per step; a
// microreset between any two steps leaves exactly the partial state a real
// discarded context switch would.

// SwitchOp is an in-progress context switch on one CPU.
type SwitchOp struct {
	s    *Scheduler
	cpu  int
	prev *VCPU
	next *VCPU
	step int
}

// BeginSwitch starts a context switch on cpu: it picks the next vCPU from
// the runqueue (round-robin with credit decay). The caller must hold the
// runqueue lock. Returns nil if the runqueue is empty and no current vCPU
// needs requeueing (CPU stays idle or keeps running prev).
func (s *Scheduler) BeginSwitch(cpu int) *SwitchOp {
	pc := &s.cpus[cpu]
	if len(pc.runq) == 0 {
		return nil
	}
	s.tel.Inc(telemetry.CtrSchedSwitches)
	next := pc.runq[0]
	return &SwitchOp{s: s, cpu: cpu, prev: pc.curr, next: next}
}

// StepDequeueNext removes the chosen vCPU from the runqueue (step 1).
func (op *SwitchOp) StepDequeueNext() {
	op.s.dequeue(op.cpu, op.next)
	op.step = 1
}

// StepRequeuePrev puts the previous vCPU back on the runqueue as runnable,
// if there was one (step 2).
func (op *SwitchOp) StepRequeuePrev() {
	if op.prev != nil && op.prev.State == Running {
		op.prev.State = Runnable
		op.prev.RunningOn = NoCPU
		op.s.enqueue(op.cpu, op.prev)
	}
	op.step = 2
}

// StepSetCurr updates the per-CPU structure (step 3). After this step the
// per-CPU copy and the per-vCPU copies disagree until StepSetVCPU runs —
// the paper's inconsistency window.
func (op *SwitchOp) StepSetCurr() {
	op.s.cpus[op.cpu].curr = op.next
	op.step = 3
}

// StepSetVCPU updates the two per-vCPU copies and the state (step 4),
// completing the switch.
func (op *SwitchOp) StepSetVCPU() {
	op.next.RunningOn = op.cpu
	op.next.Processor = op.cpu
	op.next.State = Running
	op.next.Credit -= 10
	if op.next.Credit <= 0 {
		op.next.Credit = initialCredit
	}
	op.step = 4
}

// Next returns the vCPU being switched in.
func (op *SwitchOp) Next() *VCPU { return op.next }

// Prev returns the vCPU being switched out (may be nil).
func (op *SwitchOp) Prev() *VCPU { return op.prev }

// Complete runs all remaining steps atomically (used by non-injected
// paths).
func (op *SwitchOp) Complete() {
	if op.step < 1 {
		op.StepDequeueNext()
	}
	if op.step < 2 {
		op.StepRequeuePrev()
	}
	if op.step < 3 {
		op.StepSetCurr()
	}
	if op.step < 4 {
		op.StepSetVCPU()
	}
}

// Block transitions the current vCPU on cpu to Blocked and clears it from
// the per-CPU structure.
func (s *Scheduler) Block(cpu int) {
	pc := &s.cpus[cpu]
	if pc.curr == nil {
		return
	}
	s.tel.Inc(telemetry.CtrSchedBlocks)
	pc.curr.State = Blocked
	pc.curr.RunningOn = NoCPU
	pc.curr = nil
}

// --- consistency checking and repair ---------------------------------------

// InconsistencyKind classifies a scheduling-metadata disagreement by its
// post-recovery consequence.
type InconsistencyKind int

// Inconsistency kinds.
const (
	// KindStateMismatch: percpu.curr's state fields disagree — the
	// scheduler's assertions fail (hypervisor panic).
	KindStateMismatch InconsistencyKind = iota + 1
	// KindWrongCPU: the redundant RunningOn/Processor copies point
	// elsewhere — the wrong vCPU's register context gets restored.
	KindWrongCPU
	// KindQueuedRunning: a running vCPU sits on a runqueue — scheduler
	// assertion (panic).
	KindQueuedRunning
	// KindStarved: a runnable vCPU is on no runqueue — it never runs
	// again and its VM eventually fails.
	KindStarved
)

// Inconsistency describes one scheduling-metadata disagreement.
type Inconsistency struct {
	CPU  int
	VCPU *VCPU
	Kind InconsistencyKind
	Desc string
}

// CheckConsistency returns every disagreement between the per-CPU
// structure and the per-vCPU copies, plus runqueue corruption (running
// vCPUs queued, duplicates). The scheduling path asserts on these; after
// recovery, any surviving inconsistency either panics the hypervisor or
// corrupts a vCPU's context.
func (s *Scheduler) CheckConsistency() []Inconsistency {
	var out []Inconsistency
	for c := range s.cpus {
		curr := s.cpus[c].curr
		if curr != nil {
			if curr.RunningOn != c {
				out = append(out, Inconsistency{CPU: c, VCPU: curr, Kind: KindWrongCPU,
					Desc: fmt.Sprintf("percpu.curr=%s but RunningOn=%d", curr.Name(), curr.RunningOn)})
			}
			if curr.Processor != c {
				out = append(out, Inconsistency{CPU: c, VCPU: curr, Kind: KindWrongCPU,
					Desc: fmt.Sprintf("percpu.curr=%s but Processor=%d", curr.Name(), curr.Processor)})
			}
			if curr.State != Running {
				out = append(out, Inconsistency{CPU: c, VCPU: curr, Kind: KindStateMismatch,
					Desc: fmt.Sprintf("percpu.curr=%s but State=%v", curr.Name(), curr.State)})
			}
		}
		for _, v := range s.cpus[c].runq {
			if v.State == Running {
				out = append(out, Inconsistency{CPU: c, VCPU: v, Kind: KindQueuedRunning,
					Desc: fmt.Sprintf("%s on runq %d while Running", v.Name(), c)})
			}
		}
	}
	for _, v := range s.vcpus {
		if v.RunningOn != NoCPU && s.cpus[v.RunningOn].curr != v {
			out = append(out, Inconsistency{CPU: v.RunningOn, VCPU: v, Kind: KindWrongCPU,
				Desc: fmt.Sprintf("%s claims RunningOn=%d but percpu.curr disagrees", v.Name(), v.RunningOn)})
		}
		if v.State == Runnable && !v.queued {
			out = append(out, Inconsistency{CPU: v.Processor, VCPU: v, Kind: KindStarved,
				Desc: fmt.Sprintf("%s runnable but on no runqueue", v.Name())})
		}
	}
	return out
}

// Queued reports whether the vCPU is on a runqueue.
func (v *VCPU) Queued() bool { return v.queued }

// RepairFromPerCPU implements the paper's enhancement: the per-CPU
// structures are taken as the reliable source, and all per-vCPU copies,
// states and runqueues are rewritten to agree with them. Returns the
// number of fields rewritten.
func (s *Scheduler) RepairFromPerCPU() int {
	fixed := 0
	running := make(map[*VCPU]int, len(s.cpus))
	for c := range s.cpus {
		if s.cpus[c].curr != nil {
			running[s.cpus[c].curr] = c
		}
	}
	// Rebuild every runqueue from scratch: a vCPU belongs on its
	// processor's queue iff it is not running and not blocked.
	for c := range s.cpus {
		s.cpus[c].runq = s.cpus[c].runq[:0]
	}
	for _, v := range s.vcpus {
		v.queued = false
	}
	for _, v := range s.vcpus {
		if c, ok := running[v]; ok {
			if v.RunningOn != c {
				v.RunningOn = c
				fixed++
			}
			if v.Processor != c {
				v.Processor = c
				fixed++
			}
			if v.State != Running {
				v.State = Running
				fixed++
			}
			continue
		}
		if v.RunningOn != NoCPU {
			v.RunningOn = NoCPU
			fixed++
		}
		if v.State == Running {
			// Initialize to a fixed valid value (paper: "where
			// possible, initialize the data to a fixed valid value"):
			// a non-running vCPU becomes runnable.
			v.State = Runnable
			fixed++
		}
		if v.Processor < 0 || v.Processor >= len(s.cpus) {
			v.Processor = 0
			fixed++
		}
		if v.State == Runnable {
			s.enqueue(v.Processor, v)
		}
	}
	return fixed
}

// CorruptRandom models error propagation into scheduling metadata: it
// flips one of the redundant copies at random. Returns a description.
func (s *Scheduler) CorruptRandom(rng *rand.Rand) string {
	if len(s.vcpus) == 0 {
		return "no vcpus"
	}
	v := s.vcpus[rng.IntN(len(s.vcpus))]
	switch rng.IntN(3) {
	case 0:
		v.RunningOn = rng.IntN(len(s.cpus))
		return fmt.Sprintf("%s.RunningOn=%d", v.Name(), v.RunningOn)
	case 1:
		v.Processor = rng.IntN(len(s.cpus))
		return fmt.Sprintf("%s.Processor=%d", v.Name(), v.Processor)
	default:
		v.State = State(rng.IntN(3) + 1)
		return fmt.Sprintf("%s.State=%v", v.Name(), v.State)
	}
}
