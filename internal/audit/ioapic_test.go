package audit

import (
	"reflect"
	"testing"
	"time"

	"nilihype/internal/hw"
	"nilihype/internal/telemetry"
)

// TestIOAPICRouteDamageRepaired: the monolithic audit walk reads the
// redirection table back against the boot copy, reprograms diverged
// entries, and reports one Repaired violation.
func TestIOAPICRouteDamageRepaired(t *testing.T) {
	h, _ := newTarget(t)
	io := h.Machine.IOAPIC()
	io.CorruptRoute(hw.IRQBlock, hw.CorruptCPU)
	io.CorruptRoute(hw.IRQNIC, hw.CorruptDisable)
	r := Run(h, Options{})
	vs := classes(r)[ClassIOAPIC]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("ioapic verdicts = %v", vs)
	}
	if io.RouteDamage() != 0 {
		t.Fatal("audit left redirection damage")
	}
	if h.Tel.Counters[telemetry.CtrIOAPICRepairs] == 0 {
		t.Fatal("repair counter did not advance")
	}
	// Idempotent: a re-audit finds nothing.
	if r2 := Run(h, Options{}); len(classes(r2)[ClassIOAPIC]) != 0 {
		t.Fatalf("re-audit found: %v", r2.Violations)
	}
}

// TestIOAPICPartitionedMatchesMonolithic: the partitioned walk repairs the
// same damage with the same verdicts at any worker count, and the parallel
// execution is bit-identical to its serial baseline (the IO-APIC unit runs
// at the serial linkage level).
func TestIOAPICPartitionedMatchesMonolithic(t *testing.T) {
	build := func(repairCPUs int, serialExec bool) *Report {
		h, _ := newTarget(t)
		io := h.Machine.IOAPIC()
		io.CorruptRoute(hw.IRQBlock, hw.CorruptVector)
		r := Run(h, Options{
			RepairCPUs:    repairCPUs,
			SerialExec:    serialExec,
			FrameScanCost: 700 * time.Microsecond,
		})
		if io.RouteDamage() != 0 {
			t.Fatalf("cpus=%d serial=%v: damage left behind", repairCPUs, serialExec)
		}
		return r
	}
	mono, _ := func() (*Report, bool) {
		h, _ := newTarget(t)
		h.Machine.IOAPIC().CorruptRoute(hw.IRQBlock, hw.CorruptVector)
		return Run(h, Options{}), true
	}()
	ref := build(4, true)
	if !reflect.DeepEqual(classes(mono)[ClassIOAPIC], classes(ref)[ClassIOAPIC]) {
		t.Fatalf("monolithic %v vs partitioned %v", classes(mono)[ClassIOAPIC], classes(ref)[ClassIOAPIC])
	}
	for _, cpus := range []int{2, 4, 8} {
		for i := 0; i < 3; i++ {
			got := build(cpus, false)
			got.Timing = ref.Timing // timing varies with worker count by design
			want := *ref
			want.Timing = got.Timing
			if !reflect.DeepEqual(&want, got) {
				t.Fatalf("cpus=%d run %d diverged:\nwant %+v\ngot  %+v", cpus, i, &want, got)
			}
		}
	}
}
