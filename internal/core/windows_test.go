package core

import (
	"testing"
	"time"
)

// TestRecoveryWindowSingleAttempt: a plain failstop recovered by the first
// rung yields exactly one closed window bracketing the stop-the-world
// pause and the stable resume, and OnPause fires once at the pause
// instant.
func TestRecoveryWindowSingleAttempt(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	var pauses int
	var pausedAt time.Duration
	r.engine.OnPause = func() {
		pauses++
		pausedAt = r.clk.Now()
	}
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(2 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if pauses != 1 {
		t.Fatalf("OnPause fired %d times, want 1", pauses)
	}
	ws := r.engine.RecoveryWindows()
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1: %+v", len(ws), ws)
	}
	w := ws[0]
	a := r.engine.Attempts[0]
	if w.Mechanism != Microreset {
		t.Fatalf("window mechanism = %v, want Microreset", w.Mechanism)
	}
	if w.Start != a.StartedAt || w.Start != pausedAt {
		t.Fatalf("window Start %v != attempt StartedAt %v / OnPause instant %v",
			w.Start, a.StartedAt, pausedAt)
	}
	if a.ResumedAt == 0 || w.End != a.ResumedAt {
		t.Fatalf("window End %v != attempt ResumedAt %v", w.End, a.ResumedAt)
	}
	if w.End <= w.Start {
		t.Fatalf("window not positive: [%v, %v)", w.Start, w.End)
	}
}

// TestRecoveryWindowEscalationMerges: when the first rung fails before it
// can re-enable guests, no second outage opens — the window runs from the
// first attempt's pause to the rung that finally resumed, and is
// attributed to that rung. OnPause still fires once per stop-the-world.
func TestRecoveryWindowEscalationMerges(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	var pauses int
	r.engine.OnPause = func() { pauses++ }
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.CorruptStaticScratchWord(testRNG())
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(5 * time.Second)
	if r.engine.Status() != StatusRecovered || len(r.engine.Attempts) != 2 {
		t.Fatalf("status = %v, attempts = %d", r.engine.Status(), len(r.engine.Attempts))
	}
	if pauses != len(r.engine.Attempts) {
		t.Fatalf("OnPause fired %d times over %d attempts", pauses, len(r.engine.Attempts))
	}
	a0, a1 := r.engine.Attempts[0], r.engine.Attempts[1]
	if a0.ResumedAt != 0 {
		t.Fatalf("failed first rung has ResumedAt %v, want 0 (outage never closed)", a0.ResumedAt)
	}
	ws := r.engine.RecoveryWindows()
	if len(ws) != 1 {
		t.Fatalf("escalated run yields %d windows, want 1 merged: %+v", len(ws), ws)
	}
	w := ws[0]
	if w.Mechanism != Microreboot {
		t.Fatalf("merged window attributed to %v, want the resuming rung Microreboot", w.Mechanism)
	}
	if w.Start != a0.StartedAt {
		t.Fatalf("merged window Start %v != first pause %v", w.Start, a0.StartedAt)
	}
	if a1.ResumedAt == 0 || w.End != a1.ResumedAt {
		t.Fatalf("merged window End %v != final resume %v", w.End, a1.ResumedAt)
	}
	// The merged outage must span both rungs' repair work: strictly longer
	// than the reboot alone would be from its own start.
	if w.End-w.Start <= a1.Latency {
		t.Fatalf("merged window %v not longer than the final rung's latency %v",
			w.End-w.Start, a1.Latency)
	}
}

// TestRecoveryWindowExhaustionStaysOpen: a terminally failed run leaves
// the last window open (End == 0) — the system never came back.
func TestRecoveryWindowExhaustionStaysOpen(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	if tag := r.h.Heap.CorruptRandomObject(testRNG()); tag == "no live objects" {
		t.Fatal("no live heap object to corrupt")
	}
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(5 * time.Second)
	if r.engine.Status() != StatusFailed {
		t.Fatalf("status = %v, want failed", r.engine.Status())
	}
	ws := r.engine.RecoveryWindows()
	if len(ws) == 0 {
		t.Fatal("failed run reports no outage windows")
	}
	last := ws[len(ws)-1]
	if last.End != 0 {
		t.Fatalf("terminally failed run closed its last window at %v", last.End)
	}
	for _, w := range ws[:len(ws)-1] {
		if w.End <= w.Start {
			t.Fatalf("closed window not positive: %+v", w)
		}
	}
}
