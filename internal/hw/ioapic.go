package hw

import "fmt"

// IRQLine identifies a hardware interrupt line routed through the IO-APIC.
type IRQLine int

// Device interrupt lines.
const (
	IRQBlock IRQLine = iota + 1
	IRQNIC

	numIRQLines = int(IRQNIC) + 1
)

// String returns a short name for the line.
func (l IRQLine) String() string {
	switch l {
	case IRQBlock:
		return "irq-block"
	case IRQNIC:
		return "irq-nic"
	default:
		return fmt.Sprintf("irq(%d)", int(l))
	}
}

// lineState tracks the per-line delivery state machine. A line with an
// un-acknowledged in-service interrupt cannot deliver again: if recovery
// fails to acknowledge in-service interrupts (§III-B "all pending and
// in-service interrupts are acknowledged"), the device behind the line goes
// silent and the corresponding VM eventually fails.
type lineState struct {
	cpu       int    // routed destination CPU
	vec       Vector // delivered vector
	enabled   bool
	inService bool
	pending   bool
}

// IOAPIC routes device interrupt lines to CPUs. Writes to its redirection
// table during normal operation are what ReHype must log and replay across
// reboot (Table IV discussion); NiLiHype keeps the table in place.
type IOAPIC struct {
	machine *Machine
	lines   [numIRQLines + 1]lineState

	// bootLines is the hypervisor's software copy of the redirection
	// table, recorded once at the end of boot (the irq_desc bookkeeping a
	// real hypervisor keeps). Hardware-level corruption of the live table
	// is detectable by read-back comparison against this copy, and
	// repairable by reprogramming from it. Written before any campaign
	// snapshot is taken and never mutated afterwards, so it needs no
	// snapshot coverage.
	bootLines [numIRQLines + 1]lineState

	// RedirWrites counts redirection-table writes since boot; ReHype's
	// IO-APIC logging during normal operation mirrors these.
	RedirWrites uint64
}

func newIOAPIC(m *Machine) *IOAPIC {
	io := &IOAPIC{machine: m}
	return io
}

// Route programs line to deliver vec to cpu and enables it.
func (io *IOAPIC) Route(line IRQLine, cpu int, vec Vector) {
	io.lines[line] = lineState{cpu: cpu, vec: vec, enabled: true}
	io.RedirWrites++
}

// Mask disables delivery on line.
func (io *IOAPIC) Mask(line IRQLine) {
	io.lines[line].enabled = false
	io.RedirWrites++
}

// Raise asserts line. If the line is enabled and has no in-service
// interrupt, the interrupt is delivered (or queued pending at the CPU);
// otherwise the assertion is latched pending at the line.
func (io *IOAPIC) Raise(line IRQLine) {
	st := &io.lines[line]
	if !st.enabled {
		return
	}
	if st.inService {
		st.pending = true
		return
	}
	st.inService = true
	io.machine.cpus[st.cpu].raise(st.vec)
}

// EOI acknowledges the in-service interrupt on line. If another assertion
// was latched while in service, it is delivered immediately.
func (io *IOAPIC) EOI(line IRQLine) {
	st := &io.lines[line]
	if !st.inService {
		return
	}
	st.inService = false
	if st.pending {
		st.pending = false
		st.inService = true
		io.machine.cpus[st.cpu].raise(st.vec)
	}
}

// InService reports whether line has an unacknowledged in-service
// interrupt.
func (io *IOAPIC) InService(line IRQLine) bool { return io.lines[line].inService }

// AckAll acknowledges every pending and in-service interrupt on every
// line. This is the recovery-time "acknowledge all pending and in-service
// interrupts" operation shared by ReHype and NiLiHype.
func (io *IOAPIC) AckAll() {
	for i := range io.lines {
		io.lines[i].inService = false
		io.lines[i].pending = false
	}
}

// NumLines returns the highest valid IRQLine number; valid lines are
// 1..NumLines.
func (io *IOAPIC) NumLines() int { return numIRQLines }

// LineEnabled reports whether line is enabled for delivery.
func (io *IOAPIC) LineEnabled(line IRQLine) bool { return io.lines[line].enabled }

// RecordBootRoutes captures the current redirection table as the
// known-good software copy. Called once at the end of hypervisor boot,
// after all device lines are routed.
func (io *IOAPIC) RecordBootRoutes() {
	for i := range io.lines {
		io.bootLines[i] = lineState{
			cpu:     io.lines[i].cpu,
			vec:     io.lines[i].vec,
			enabled: io.lines[i].enabled,
		}
	}
}

// RouteDamage counts redirection entries whose destination CPU, vector, or
// enable bit diverge from the recorded software copy — the IRQ-delivery
// detection criterion's read-back comparison. In-service/pending latch
// state is transient and not compared.
func (io *IOAPIC) RouteDamage() int {
	n := 0
	for i := 1; i <= numIRQLines; i++ {
		st, b := &io.lines[i], &io.bootLines[i]
		if st.cpu != b.cpu || st.vec != b.vec || st.enabled != b.enabled {
			n++
		}
	}
	return n
}

// ReprogramFromBoot rewrites every diverged redirection entry from the
// software copy and returns the number of entries repaired. Pure table
// state: latched pending assertions are left for the normal EOI/Raise
// machinery (or recovery's AckAll) to resolve, keeping the repair
// deterministic and side-effect-free for the audit walk.
func (io *IOAPIC) ReprogramFromBoot() int {
	n := 0
	for i := 1; i <= numIRQLines; i++ {
		st, b := &io.lines[i], &io.bootLines[i]
		if st.cpu != b.cpu || st.vec != b.vec || st.enabled != b.enabled {
			st.cpu, st.vec, st.enabled = b.cpu, b.vec, b.enabled
			io.RedirWrites++
			n++
		}
	}
	return n
}

// Redirection-corruption modes for CorruptRoute.
const (
	CorruptDisable = iota // drop the enable bit: device goes silent
	CorruptCPU            // misroute to the next CPU
	CorruptVector         // deliver the wrong vector
)

// CorruptRoute applies a hardware-level redirection-table corruption to
// line and returns a static description. Models a bit-flip in the IO-APIC
// RTE: not a logged software write, so RedirWrites does not advance — which
// is exactly why detection needs the read-back comparison.
func (io *IOAPIC) CorruptRoute(line IRQLine, mode int) string {
	st := &io.lines[line]
	switch mode {
	case CorruptCPU:
		st.cpu = (st.cpu + 1) % len(io.machine.cpus)
		return "ioapic-route:cpu"
	case CorruptVector:
		st.vec = VecIPI
		return "ioapic-route:vector"
	default:
		st.enabled = false
		return "ioapic-route:disabled"
	}
}

// StrandLine wedges line's delivery state machine: a phantom in-service
// interrupt that no EOI will ever acknowledge, so every later assertion
// latches pending and is never delivered (pending-IRQ-route loss). Detected
// by the IRQ-delivery criterion's stuck-in-service check; recovery's AckAll
// clears it.
func (io *IOAPIC) StrandLine(line IRQLine) string {
	io.lines[line].inService = true
	return "ioapic-pending:stranded-in-service"
}

// LineFor returns the line that delivers vec, or -1 if none does.
func (io *IOAPIC) LineFor(vec Vector) IRQLine {
	for i := 1; i < len(io.lines); i++ {
		if io.lines[i].enabled && io.lines[i].vec == vec {
			return IRQLine(i)
		}
	}
	return -1
}
