package campaign

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/inject"
	"nilihype/internal/traffic"
)

// trafficCfg arms a small exactly-sized population against a fast campaign
// config: 50k users (50 cohorts) against the 2s bench window.
func trafficCfg(fault inject.FaultType, mech core.Mechanism) RunConfig {
	rc := fastCfg(fault, mech)
	rc.Traffic = traffic.Config{Users: 50_000}
	return rc
}

func TestTrafficOffLeavesSLONil(t *testing.T) {
	r := Run(fastCfg(inject.Failstop, core.Microreset))
	if r.SLO != nil {
		t.Fatalf("traffic-off run carries an SLO: %+v", *r.SLO)
	}
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 2}
	s := c.Execute()
	if s.SLORuns != 0 || s.SLO != (traffic.SLO{}) {
		t.Fatalf("traffic-off summary carries SLO state: runs=%d slo=%+v", s.SLORuns, s.SLO)
	}
}

// TestTrafficRunScoresRecoveryWindow: a detected, recovered failstop run
// must carry a populated SLO whose outage matches the recovery story.
func TestTrafficRunScoresRecoveryWindow(t *testing.T) {
	r := Run(trafficCfg(inject.Failstop, core.Microreset))
	if !r.Detected || !r.Success {
		t.Fatalf("detected=%v success=%v", r.Detected, r.Success)
	}
	slo := r.SLO
	if slo == nil {
		t.Fatal("traffic-on run carries no SLO")
	}
	if slo.Users != 50_000 {
		t.Fatalf("Users = %d, want 50000", slo.Users)
	}
	// 50k users × 2s bench / 1s period — open-loop arrivals are exact.
	if slo.Offered != 100_000 {
		t.Fatalf("Offered = %d, want 100000", slo.Offered)
	}
	if slo.Offered != slo.Completed+slo.TimedOut+slo.Failed {
		t.Fatalf("conservation violated: %d != %d+%d+%d",
			slo.Offered, slo.Completed, slo.TimedOut, slo.Failed)
	}
	if slo.Outages == 0 || slo.OutageUs == 0 || slo.DegradedUserUs == 0 {
		t.Fatalf("recovered run shows no outage: %+v", *slo)
	}
	if slo.DegradedUserUs != slo.OutageUs*slo.Users {
		t.Fatalf("DegradedUserUs = %d, want OutageUs×Users = %d", slo.DegradedUserUs, slo.OutageUs*slo.Users)
	}
}

// TestSLODifferentiatesMechanisms is the point of the whole layer: the
// same fault recovered by microreset (~ms outage) vs microreboot (~480ms
// with all enhancements on) must show proportionally different
// user-visible damage — and against a 300ms deadline, only the slow
// mechanism pushes users past their timeout.
func TestSLODifferentiatesMechanisms(t *testing.T) {
	var reset, reboot traffic.SLO
	for seed := uint64(1); seed <= 5; seed++ {
		rc := trafficCfg(inject.Failstop, core.Microreset)
		rc.Traffic.Timeout = 300 * time.Millisecond
		rc.Seed = seed
		r := Run(rc)
		if r.SLO != nil {
			reset.Merge(r.SLO)
		}
		rc = trafficCfg(inject.Failstop, core.Microreboot)
		rc.Traffic.Timeout = 300 * time.Millisecond
		rc.Seed = seed
		r = Run(rc)
		if r.SLO != nil {
			reboot.Merge(r.SLO)
		}
	}
	if reset.Outages == 0 || reboot.Outages == 0 {
		t.Fatalf("no outages recorded: reset=%d reboot=%d", reset.Outages, reboot.Outages)
	}
	if reboot.DegradedUserUs <= reset.DegradedUserUs*10 {
		t.Fatalf("microreboot degradation %d not ≫ microreset %d",
			reboot.DegradedUserUs, reset.DegradedUserUs)
	}
	if reset.TimedOut != 0 {
		t.Fatalf("microreset (~ms outage) timed out %d requests against a 300ms deadline", reset.TimedOut)
	}
	if reboot.TimedOut == 0 {
		t.Fatal("microreboot (~480ms outage) produced no timeouts against a 300ms deadline")
	}
}

// sloIdentityCases are the fault classes the bit-identity suite sweeps:
// the plain classes plus PrivVM failure (full ladder, 2s-scale restart)
// and IO-APIC corruption.
func sloIdentityCases() []RunConfig {
	privvm := trafficCfg(inject.PrivVMCrash, core.Microreset)
	privvm.Recovery = core.FullLadderConfig()
	ioapic := trafficCfg(inject.DeviceIOAPIC, core.Microreset)
	ioapic.Recovery = core.HybridConfig()
	return []RunConfig{
		trafficCfg(inject.Failstop, core.Microreset),
		trafficCfg(inject.Register, core.Microreboot),
		privvm,
		ioapic,
	}
}

// TestSLOBitIdenticalAcrossParallelism: Summary.SLO (and every Result)
// must not depend on worker count.
func TestSLOBitIdenticalAcrossParallelism(t *testing.T) {
	for _, base := range sloIdentityCases() {
		var ref Summary
		var refResults []Result
		for _, par := range []int{1, 4} {
			var results []Result
			c := Campaign{
				Base: base, Runs: 6, Parallelism: par,
				OnResult: func(r Result) { results = append(results, r.Clone()) },
			}
			s := c.Execute()
			sort.Slice(results, func(i, j int) bool { return results[i].Seed < results[j].Seed })
			if par == 1 {
				ref, refResults = s, results
				if s.SLORuns != 6 {
					t.Fatalf("%s: SLORuns = %d, want 6", base.FaultClass(), s.SLORuns)
				}
				continue
			}
			if !reflect.DeepEqual(ref, s) {
				t.Fatalf("%s: summary differs at parallelism %d:\n p1: %+v\n p%d: %+v",
					base.FaultClass(), par, ref, par, s)
			}
			if !reflect.DeepEqual(refResults, results) {
				t.Fatalf("%s: results differ at parallelism %d", base.FaultClass(), par)
			}
		}
	}
}

// TestSLOForkMatchesColdBoot: the traffic engine is armed after the
// snapshot restore, so forked and cold-booted runs must produce
// bit-identical Results (including the SLO) for every fault class.
func TestSLOForkMatchesColdBoot(t *testing.T) {
	for _, rc := range sloIdentityCases() {
		assertForkMatchesCold(t, rc, []uint64{1, 2, 3})
	}
}

// TestSLOShardedEquivalence: the SLO fields survive the shard JSON wire
// protocol exactly — 1-shard, 4-shard and in-process campaigns agree
// bit-for-bit.
func TestSLOShardedEquivalence(t *testing.T) {
	c := Campaign{
		Base:        trafficCfg(inject.Register, core.Microreboot),
		Runs:        8,
		Parallelism: 2,
		SeedBase:    7,
	}
	inProc := c.Execute()
	if inProc.SLORuns != 8 {
		t.Fatalf("SLORuns = %d, want 8", inProc.SLORuns)
	}
	for _, n := range []int{1, 4} {
		sharded, _, err := ExecuteSharded(c, n, ShardOptions{Spawn: jsonSpawn})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if !reflect.DeepEqual(inProc, sharded) {
			t.Fatalf("shards=%d summary differs from in-process:\n in-proc: %+v\n sharded: %+v",
				n, inProc, sharded)
		}
	}
}

// TestMillionUserRun: the acceptance-scale population. Arrival counts are
// exact at any scale (cohort batching, not sampling), and the run must
// still classify normally.
func TestMillionUserRun(t *testing.T) {
	rc := trafficCfg(inject.Failstop, core.Microreset)
	rc.Traffic = traffic.Config{Users: 1_000_000}
	r := Run(rc)
	if r.SLO == nil {
		t.Fatal("no SLO")
	}
	if r.SLO.Users != 1_000_000 {
		t.Fatalf("Users = %d", r.SLO.Users)
	}
	// 1M users × 2s / 1s period.
	if r.SLO.Offered != 2_000_000 {
		t.Fatalf("Offered = %d, want 2000000", r.SLO.Offered)
	}
	if r.SLO.Offered != r.SLO.Completed+r.SLO.TimedOut+r.SLO.Failed {
		t.Fatalf("conservation violated: %+v", *r.SLO)
	}
	if !r.Detected {
		t.Fatal("million-user run changed the fault story")
	}
}

// TestTrafficOnAllocBudget is the traffic-on sibling of
// TestForkedRunAllocBudget: arming a million-user population may not add
// per-request or per-tick allocations — only the fixed per-run overhead
// (engine arming, the ~400-event tick chain reuses pooled events).
func TestTrafficOnAllocBudget(t *testing.T) {
	rc := ThroughputBenchConfig()
	rc.Traffic = traffic.Config{Users: 1_000_000}
	img, err := buildImage(rc)
	if err != nil {
		t.Fatalf("buildImage: %v", err)
	}
	seed := uint64(0)
	// Warm the traffic engine's one-time buffers (pend, intervals,
	// cohort slab) before measuring.
	rc.Seed = 1
	img.run(rc)
	allocs := testing.AllocsPerRun(5, func() {
		seed++
		rc.Seed = seed
		img.run(rc)
	})
	// Traffic-off steady state is ~252 allocs/run with a 400 ceiling; the
	// armed population adds only O(1) per run (measured ~+2). Hold a
	// separate, equally tight ceiling so a per-tick or per-batch
	// allocation (hundreds per run) trips immediately.
	const budget = 450
	if allocs > budget {
		t.Fatalf("traffic-on forked run allocates %.0f objects, budget %d", allocs, budget)
	}
}
