package hypercall

import (
	"fmt"
	"time"

	"nilihype/internal/evtchn"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/xentime"
)

// Build constructs the handler program for a call. Programs are built at
// dispatch time (and again at retry time), so a retried multicall skips
// already-completed components via the completion log.
//
// Each op's step sequence is a static template of shared step functions;
// Build stamps a copy into the Env's reusable buffer, binding each step to
// its call. Dispatch therefore costs one buffer append instead of a fresh
// slice plus a closure per step — the difference is most of the campaign
// executor's allocation profile.
//
// Step instruction weights are calibrated: together with the workload mix
// they determine what fraction of hypervisor execution holds locks, is
// mid-non-idempotent-update, is inside the scheduler, etc. — the occupancy
// fractions that the paper's Table I recovery ladder reflects.
func Build(env *Env, call *Call) (Program, error) {
	buf, err := appendCall(env.progBuf[:0], env, call)
	if err != nil {
		return nil, err
	}
	env.progBuf = buf
	return buf, nil
}

// appendCall appends call's program steps to buf.
func appendCall(buf Program, env *Env, call *Call) (Program, error) {
	if call.Op == OpMulticall {
		return appendMulticall(buf, env, call)
	}
	tmpl, err := templateFor(call)
	if err != nil {
		return nil, err
	}
	return stampSteps(buf, tmpl, call), nil
}

// stampSteps appends the template's steps bound to c.
func stampSteps(buf Program, tmpl []Step, c *Call) Program {
	n := len(buf)
	buf = append(buf, tmpl...)
	for i := n; i < len(buf); i++ {
		buf[i].C = c
	}
	return buf
}

// templateFor selects the static step template for a non-multicall op.
func templateFor(call *Call) ([]Step, error) {
	switch call.Op {
	case OpMMUUpdate:
		if call.Args[SubOpArg] == MMUPin {
			return mmuPinTmpl, nil
		}
		return mmuUnpinTmpl, nil
	case OpMemoryOp:
		return memoryOpTmpl, nil
	case OpGrantTableOp:
		if call.Args[SubOpArg] == GrantMap {
			return grantMapTmpl, nil
		}
		return grantUnmapTmpl, nil
	case OpEventChannelOp:
		return evtchnTmpl, nil
	case OpSchedOp:
		return schedOpTmpl, nil
	case OpSetTimerOp:
		return setTimerTmpl, nil
	case OpConsoleIO:
		return consoleIOTmpl, nil
	case OpVCPUOp:
		return vcpuOpTmpl, nil
	case OpDomctl:
		if call.Args[SubOpArg] == DomctlCreate {
			return domctlCreateTmpl, nil
		}
		return domctlDestroyTmpl, nil
	case OpSyscallForward:
		return syscallForwardTmpl, nil
	case OpEPTViolation:
		if call.Args[SubOpArg] == EPTPopulate {
			return eptPopulateTmpl, nil
		}
		return eptUnmapTmpl, nil
	case OpIOEmulation:
		return ioEmulationTmpl, nil
	default:
		return nil, fmt.Errorf("hypercall: unknown op %v", call.Op)
	}
}

// assertf returns an assertion-failure error (hypervisor ASSERT).
func assertf(format string, args ...any) error {
	return fmt.Errorf("ASSERT: "+format, args...)
}

// doNop is the shared body of pure-cost steps.
func doNop(*Env, *Step) error { return nil }

// doTargetDomainCheck walks the caller's domain structure.
func doTargetDomainCheck(e *Env, st *Step) error {
	_, err := e.targetDomain(st.C.Dom)
	return err
}

// --- mmu_update -------------------------------------------------------------

// mmuPinTmpl/mmuUnpinTmpl model page-table pin/unpin: the canonical
// non-idempotent hypercall. The reference count and the validation bit are
// updated in separate steps; re-executing the count update after a partial
// run trips the validation assertion — exactly the paper's §IV example.
var mmuPinTmpl = []Step{
	{Name: "entry", Instrs: 150, Do: doNop},
	{Name: "lock_page_alloc", Instrs: 40, Do: doLockPageAlloc},
	{Name: "inc_refcount", Instrs: 60, Do: doMMUIncRef},
	{Name: "write_pte", Instrs: 120, Do: doNop},
	{Name: "validate", Instrs: 80, Do: doMMUValidate},
	{Name: "window", Instrs: 38, Unmitigated: true, Do: doNop},
	{Name: "unlock_page_alloc", Instrs: 30, Do: doUnlockPageAlloc},
	{Name: "complete", Instrs: 20, Do: doNop},
}

var mmuUnpinTmpl = []Step{
	{Name: "entry", Instrs: 150, Do: doNop},
	{Name: "lock_page_alloc", Instrs: 40, Do: doLockPageAlloc},
	{Name: "clear_validated", Instrs: 50, Do: doMMUClearValidated},
	{Name: "dec_refcount", Instrs: 60, Do: doMMUDecRef},
	{Name: "window", Instrs: 38, Unmitigated: true, Do: doNop},
	{Name: "unlock_page_alloc", Instrs: 30, Do: doUnlockPageAlloc},
	{Name: "complete", Instrs: 20, Do: doNop},
}

func mmuFrame(e *Env, c *Call) (*mm.PageFrame, error) {
	frame := int(c.Args[1])
	if frame < 0 || frame >= e.Frames.Len() {
		return nil, assertf("mmu_update: bad frame %d", frame)
	}
	return e.Frames.Frame(frame), nil
}

func doLockPageAlloc(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	return e.Acquire(dm.PageAllocLock)
}

func doUnlockPageAlloc(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	e.Release(dm.PageAllocLock)
	return nil
}

func doMMUIncRef(e *Env, st *Step) error {
	f, err := mmuFrame(e, st.C)
	if err != nil {
		return err
	}
	e.logWriteRecord(LogCostMMU, UndoRecord{Desc: "mmu_pin: undo inc_refcount", Kind: UndoFrameUseDelta, Frame: f, Arg: -1})
	f.Type = mm.FramePageTable
	f.IncUse()
	return nil
}

func doMMUValidate(e *Env, st *Step) error {
	f, err := mmuFrame(e, st.C)
	if err != nil {
		return err
	}
	if f.UseCount != 1 {
		return assertf("mmu_pin: refcount %d on validate (retry of partial hypercall?)", f.UseCount)
	}
	// The validation bit itself is not logged: a rollback that leaves it
	// stale is exactly the inconsistency the recovery-time page-frame
	// scan repairs.
	f.Validated = true
	return nil
}

func doMMUClearValidated(e *Env, st *Step) error {
	f, err := mmuFrame(e, st.C)
	if err != nil {
		return err
	}
	if !f.Validated {
		return assertf("mmu_unpin: frame %d not validated (retry of partial hypercall?)", int(st.C.Args[1]))
	}
	e.logWriteRecord(LogCostMMU, UndoRecord{Desc: "mmu_unpin: undo clear_validated", Kind: UndoFrameRevalidate, Frame: f})
	f.Validated = false
	return nil
}

func doMMUDecRef(e *Env, st *Step) error {
	f, err := mmuFrame(e, st.C)
	if err != nil {
		return err
	}
	e.logWriteRecord(LogCostMMU, UndoRecord{Desc: "mmu_unpin: undo dec_refcount", Kind: UndoFrameUseDelta, Frame: f, Arg: 1})
	if err := f.DecUse(); err != nil {
		return assertf("mmu_unpin: %v", err)
	}
	if f.UseCount == 0 {
		f.Type = mm.FrameGuest
	}
	return nil
}

// --- memory_op --------------------------------------------------------------

// memoryOpTmpl models increase/decrease reservation: adjusts the domain's
// page accounting under the static heap lock. Non-idempotent via TotPages.
var memoryOpTmpl = []Step{
	{Name: "entry", Instrs: 120, Do: doNop},
	{Name: "lock_heap", Instrs: 40, Do: doLockHeap},
	{Name: "adjust_tot_pages", Instrs: 110, Do: doAdjustTotPages},
	{Name: "update_heap", Instrs: 260, Do: doHeapCheck},
	{Name: "window", Instrs: 32, Unmitigated: true, Do: doNop},
	{Name: "unlock_heap", Instrs: 30, Do: doUnlockHeap},
	{Name: "complete", Instrs: 20, Do: doNop},
}

func doLockHeap(e *Env, st *Step) error { return e.Acquire(e.Statics.HeapLock) }

func doUnlockHeap(e *Env, st *Step) error {
	e.Release(e.Statics.HeapLock)
	return nil
}

func doHeapCheck(e *Env, st *Step) error { return e.Heap.Check() }

func doAdjustTotPages(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	delta := int(int64(st.C.Args[1]))
	if st.C.Args[SubOpArg] == MemRelease {
		delta = -delta
	}
	e.logWriteRecord(LogCostMemory, UndoRecord{Desc: "memory_op: undo tot_pages", Kind: UndoTotPagesDelta, Dom: dm, Arg: -delta})
	dm.TotPages += delta
	if dm.TotPages < 0 || dm.TotPages > dm.MemCount {
		return assertf("memory_op: tot_pages %d out of [0,%d] for d%d (retry of partial hypercall?)",
			dm.TotPages, dm.MemCount, dm.ID)
	}
	return nil
}

// --- grant_table_op ---------------------------------------------------------

// grantMapTmpl/grantUnmapTmpl model grant map/unmap: the block I/O path's
// mechanism for sharing pages, again with a non-idempotent map count.
var grantMapTmpl = []Step{
	{Name: "entry", Instrs: 130, Do: doNop},
	{Name: "lock_grant", Instrs: 40, Do: doLockGrant},
	{Name: "map_track", Instrs: 50, Do: doGrantMapTrack},
	{Name: "inc_mapcount", Instrs: 50, Do: doGrantIncMap},
	{Name: "unlock_grant", Instrs: 30, Do: doUnlockGrant},
	{Name: "complete", Instrs: 20, Do: doNop},
}

var grantUnmapTmpl = []Step{
	{Name: "entry", Instrs: 130, Do: doNop},
	{Name: "lock_grant", Instrs: 40, Do: doLockGrant},
	{Name: "unmap_track", Instrs: 50, Do: doGrantUnmapTrack},
	{Name: "dec_mapcount", Instrs: 50, Do: doGrantDecMap},
	{Name: "window", Instrs: 44, Unmitigated: true, Do: doNop},
	{Name: "unlock_grant", Instrs: 30, Do: doUnlockGrant},
	{Name: "complete", Instrs: 20, Do: doNop},
}

func doLockGrant(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	return e.Acquire(dm.GrantLock)
}

func doUnlockGrant(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	e.Release(dm.GrantLock)
	return nil
}

func doGrantMapTrack(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	ref := int(st.C.Args[1])
	frame := int(st.C.Args[2])
	en, err := dm.GrantTab.Entry(ref)
	if err != nil {
		return assertf("grant_map: %v", err)
	}
	if !en.InUse || en.Frame != frame {
		return assertf("grant_map: ref %d not granted for frame %d in d%d", ref, frame, dm.ID)
	}
	// The I/O rings map each granted buffer exactly once; a second
	// mapping is the §IV signature of a retried partial hypercall.
	if en.MapCount != 0 {
		return assertf("grant_map: ref %d already mapped in d%d (retry of partial hypercall?)", ref, dm.ID)
	}
	h, _, err := dm.Maptrack.Map(dm.GrantTab, ref)
	if err != nil {
		return assertf("grant_map: %v", err)
	}
	e.logWriteRecord(LogCostGrant, UndoRecord{Desc: "grant_map: undo map_track", Kind: UndoMaptrackUnmap, Dom: dm, Arg: int(h)})
	return nil
}

func doGrantIncMap(e *Env, st *Step) error {
	frame := int(st.C.Args[2])
	if frame < 0 || frame >= e.Frames.Len() {
		return assertf("grant_map: bad frame %d", frame)
	}
	f := e.Frames.Frame(frame)
	e.logWriteRecord(LogCostGrant, UndoRecord{Desc: "grant_map: undo inc_mapcount", Kind: UndoFrameUseDelta, Frame: f, Arg: -1})
	f.IncUse()
	return nil
}

func doGrantUnmapTrack(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	ref := int(st.C.Args[1])
	h := dm.Maptrack.HandleForRef(dm.ID, ref)
	if h < 0 {
		return assertf("grant_unmap: ref %d not mapped in d%d (retry of partial hypercall?)", ref, dm.ID)
	}
	mp, err := dm.Maptrack.Unmap(h, dm.GrantTab)
	if err != nil {
		return assertf("grant_unmap: %v", err)
	}
	e.logWriteRecord(LogCostGrant, UndoRecord{Desc: "grant_unmap: undo unmap_track", Kind: UndoMaptrackMap, Dom: dm, Arg: mp.Ref})
	return nil
}

func doGrantDecMap(e *Env, st *Step) error {
	frame := int(st.C.Args[2])
	if frame < 0 || frame >= e.Frames.Len() {
		return assertf("grant_unmap: bad frame %d", frame)
	}
	f := e.Frames.Frame(frame)
	e.logWriteRecord(LogCostGrant, UndoRecord{Desc: "grant_unmap: undo dec_mapcount", Kind: UndoFrameUseDelta, Frame: f, Arg: 1})
	if err := f.DecUse(); err != nil {
		return assertf("grant_unmap: %v", err)
	}
	return nil
}

// --- event_channel_op -------------------------------------------------------

// evtchnTmpl models event-channel send: idempotent (the pending bit is
// level-triggered), so retry is always safe. Setting the peer's pending
// bit and delivering the upcall are separate steps (an abandoned upcall
// leaves a pending-but-sleeping vCPU; the scheduling-metadata repair
// re-enqueues it).
var evtchnTmpl = []Step{
	{Name: "entry", Instrs: 100, Do: doEvtEntry},
	{Name: "lookup_port", Instrs: 60, Do: doEvtLookup},
	{Name: "set_pending", Instrs: 40, Do: doEvtSetPending},
	{Name: "upcall", Instrs: 50, Do: doEvtUpcall},
	{Name: "complete", Instrs: 20, Do: doNop},
}

func doEvtEntry(e *Env, st *Step) error {
	e.scr.notified, e.scr.notifiedPort, e.scr.bad = -1, -1, false
	return nil
}

func doEvtLookup(e *Env, st *Step) error {
	// The send path walks the caller's domain structure.
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	port := int(st.C.Args[2])
	if p, err := dm.Events.Port(port); err != nil || p.State == evtchn.Free || p.State == evtchn.Unbound {
		e.scr.bad = true
	}
	return nil
}

func doEvtSetPending(e *Env, st *Step) error {
	if e.scr.bad {
		return nil
	}
	port := int(st.C.Args[2])
	who, err := e.Broker.Send(st.C.Dom, port)
	if err != nil {
		return assertf("evtchn_send: %v", err)
	}
	e.scr.notified = who
	dm, err := e.targetDomain(who)
	if err != nil {
		return err
	}
	if ports := dm.Events.PendingPorts(); len(ports) > 0 {
		e.scr.notifiedPort = ports[len(ports)-1]
	}
	return nil
}

func doEvtUpcall(e *Env, st *Step) error {
	if e.scr.notified < 0 {
		return nil
	}
	dm, err := e.targetDomain(e.scr.notified)
	if err != nil {
		return err
	}
	if v := dm.UpcallVCPU(); v != nil {
		e.Wake(v)
	}
	if e.Notify != nil && e.scr.notifiedPort >= 0 {
		e.Notify(e.scr.notified, e.scr.notifiedPort)
	}
	return nil
}

// --- sched_op ---------------------------------------------------------------

// schedOpTmpl models yield/block: the guest gives up the CPU and the
// scheduler context-switches. The switch is decomposed into the metadata
// steps whose windows produce the paper's scheduling inconsistencies.
var schedOpTmpl = []Step{
	{Name: "entry", Instrs: 100, Do: doSchedEntry},
	{Name: "lock_runq", Instrs: 30, Do: doSchedLockRunq},
	{Name: "update_runstate", Instrs: 60, Do: doSchedRunstate},
	{Name: "pick_next", Instrs: 90, Do: doSchedPickNext},
	{Name: "dequeue_next", Instrs: 50, Do: doSchedDequeueNext},
	{Name: "requeue_prev", Instrs: 50, Do: doSchedRequeuePrev},
	{Name: "set_curr", Instrs: 40, Do: doSchedSetCurr},
	{Name: "set_vcpu_state", Instrs: 70, Do: doSchedSetVCPU},
	{Name: "unlock_runq", Instrs: 30, Do: doSchedUnlockRunq},
	{Name: "context_restore", Instrs: 110, Do: doSchedContextRestore},
	{Name: "complete", Instrs: 20, Do: doNop},
}

func doSchedEntry(e *Env, st *Step) error {
	e.scr.op = nil
	return nil
}

func doSchedLockRunq(e *Env, st *Step) error {
	return e.Acquire(e.Sched.RunqueueLock(e.CPU))
}

func doSchedUnlockRunq(e *Env, st *Step) error {
	e.Release(e.Sched.RunqueueLock(e.CPU))
	return nil
}

func doSchedRunstate(e *Env, st *Step) error {
	if st.C.Args[SubOpArg] == SchedBlock {
		e.Sched.Block(e.CPU)
	}
	return nil
}

func doSchedPickNext(e *Env, st *Step) error {
	e.scr.op = e.Sched.BeginSwitch(e.CPU)
	return nil
}

func doSchedDequeueNext(e *Env, st *Step) error {
	if e.scr.op != nil {
		e.scr.op.StepDequeueNext()
	}
	return nil
}

func doSchedRequeuePrev(e *Env, st *Step) error {
	if e.scr.op != nil && st.C.Args[SubOpArg] != SchedBlock {
		e.scr.op.StepRequeuePrev()
	}
	return nil
}

func doSchedSetCurr(e *Env, st *Step) error {
	if e.scr.op != nil {
		e.scr.op.StepSetCurr()
	}
	return nil
}

func doSchedSetVCPU(e *Env, st *Step) error {
	if e.scr.op != nil {
		e.scr.op.StepSetVCPU()
	}
	return nil
}

func doSchedContextRestore(e *Env, st *Step) error {
	if e.scr.op != nil && e.SwitchContext != nil {
		e.SwitchContext(e.CPU, e.scr.op.Prev(), e.scr.op.Next())
	}
	return nil
}

// --- set_timer_op -----------------------------------------------------------

// setTimerTmpl models set_timer_op: replace the vCPU's wakeup timer and
// reprogram the APIC (separate steps — the add/reprogram window).
var setTimerTmpl = []Step{
	{Name: "entry", Instrs: 100, Do: doNop},
	{Name: "stop_old_timer", Instrs: 30, Do: doStopOldTimer},
	{Name: "add_timer", Instrs: 60, Do: doAddTimer},
	{Name: "reprogram_apic", Instrs: 40, Do: doReprogramAPIC},
	{Name: "complete", Instrs: 20, Do: doNop},
}

func doStopOldTimer(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	if dm.WakeupTimer != nil {
		e.Timers.StopTimer(dm.WakeupTimer)
		dm.WakeupTimer = nil
	}
	return nil
}

func doAddTimer(e *Env, st *Step) error {
	dm, err := e.targetDomain(st.C.Dom)
	if err != nil {
		return err
	}
	delta := time.Duration(st.C.Args[1])
	t := dm.WakeupPool
	if t == nil {
		// First set_timer_op for this domain: build the record once. The
		// upcall vCPU and wake binding are domain/hypervisor-invariant
		// (vCPU identity survives snapshot restore), so the callback can
		// be captured with the record.
		var v *sched.VCPU
		if len(dm.VCPUs) > 0 {
			v = dm.VCPUs[0]
		}
		wake := e.Wake
		t = xentime.NewTimer(e.CPU, fmt.Sprintf("d%d-wakeup", st.C.Dom), func() {
			if v != nil {
				wake(v)
			}
		})
		dm.WakeupPool = t
	}
	e.Timers.Readd(t, e.CPU, e.Now()+delta, 0)
	dm.WakeupTimer = t
	return nil
}

func doReprogramAPIC(e *Env, st *Step) error {
	e.Timers.ProgramAPIC(e.CPU)
	return nil
}

// --- console_io -------------------------------------------------------------

// consoleIOTmpl models console output: the message lands in the
// hypervisor console ring under the console static lock.
var consoleIOTmpl = []Step{
	{Name: "entry", Instrs: 80, Do: doNop},
	{Name: "lock_console", Instrs: 30, Do: doLockConsole},
	{Name: "emit", Instrs: 100, Do: doConsoleEmit},
	{Name: "unlock_console", Instrs: 30, Do: doUnlockConsole},
	{Name: "complete", Instrs: 10, Do: doNop},
}

func doLockConsole(e *Env, st *Step) error { return e.Acquire(e.Statics.Console) }

func doUnlockConsole(e *Env, st *Step) error {
	e.Release(e.Statics.Console)
	return nil
}

func doConsoleEmit(e *Env, st *Step) error {
	if e.ConsoleWrite != nil {
		e.ConsoleWrite(fmt.Sprintf("d%d: console output (call %d)", st.C.Dom, st.C.Seq))
	}
	return nil
}

// --- vcpu_op ----------------------------------------------------------------

// vcpuOpTmpl models lightweight vCPU state queries (idempotent).
var vcpuOpTmpl = []Step{
	{Name: "entry", Instrs: 80, Do: doNop},
	{Name: "read_state", Instrs: 60, Do: doTargetDomainCheck},
	{Name: "complete", Instrs: 20, Do: doNop},
}

// --- multicall --------------------------------------------------------------

// appendMulticall flattens the batch's component programs, inserting a
// completion-log step after each component. Components already marked
// complete (retry of a partial batch) are skipped — the fine-granularity
// logCompletionLabels covers every batch size the workload generates;
// multicall programs are rebuilt on each dispatch and retry, so the
// common labels must not be re-formatted every time.
var logCompletionLabels = [...]string{
	"log_completion[0]", "log_completion[1]", "log_completion[2]",
	"log_completion[3]", "log_completion[4]", "log_completion[5]",
	"log_completion[6]", "log_completion[7]", "log_completion[8]",
	"log_completion[9]", "log_completion[10]", "log_completion[11]",
	"log_completion[12]", "log_completion[13]", "log_completion[14]",
	"log_completion[15]",
}

func logCompletionLabel(i int) string {
	if i >= 0 && i < len(logCompletionLabels) {
		return logCompletionLabels[i]
	}
	return fmt.Sprintf("log_completion[%d]", i)
}

// batched-retry enhancement of §IV.
func appendMulticall(buf Program, env *Env, call *Call) (Program, error) {
	buf = append(buf, Step{Name: "multicall_entry", Instrs: 60, C: call, Do: doNop})
	for i := call.Completed; i < len(call.Batch); i++ {
		var err error
		buf, err = appendCall(buf, env, call.Batch[i])
		if err != nil {
			return nil, err
		}
		if env.RecoveryPrep {
			// Completion logging is recovery machinery (§IV): stock Xen
			// does not track per-component completion.
			buf = append(buf, Step{Name: logCompletionLabel(i), Instrs: 15, C: call, Do: doLogCompletion})
		}
	}
	buf = append(buf, Step{Name: "multicall_exit", Instrs: 30, C: call, Do: doNop})
	return buf, nil
}

func doLogCompletion(e *Env, st *Step) error {
	st.C.Completed++
	// Commit: a completed component is never rolled back or re-executed,
	// so its undo records are discarded here, not at batch completion.
	e.Undo.Clear()
	return nil
}

// --- domctl -----------------------------------------------------------------

// domctlCreateTmpl/domctlDestroyTmpl model PrivVM management operations:
// domain creation and destruction. Creation inserts into the global domain
// list — a logged critical write, since a retried partial create would
// double-insert.
var domctlCreateTmpl = []Step{
	{Name: "entry", Instrs: 200, Do: doDomctlEntry},
	{Name: "lock_domlist", Instrs: 40, Do: doLockDomList},
	{Name: "check_exists", Instrs: 60, Do: doDomctlCheckExists},
	{Name: "alloc_and_insert", Instrs: 350, Do: doDomctlInsert},
	{Name: "window", Instrs: 30, Unmitigated: true, Do: doNop},
	{Name: "unlock_domlist", Instrs: 30, Do: doUnlockDomList},
	{Name: "complete", Instrs: 40, Do: doNop},
}

var domctlDestroyTmpl = []Step{
	{Name: "entry", Instrs: 150, Do: doNop},
	{Name: "lock_domlist", Instrs: 40, Do: doLockDomList},
	{Name: "unlink_and_free", Instrs: 300, Do: doDomctlDestroy},
	{Name: "unlock_domlist", Instrs: 30, Do: doUnlockDomList},
	{Name: "complete", Instrs: 40, Do: doNop},
}

func doLockDomList(e *Env, st *Step) error { return e.Acquire(e.Statics.DomList) }

func doUnlockDomList(e *Env, st *Step) error {
	e.Release(e.Statics.DomList)
	return nil
}

func doDomctlEntry(e *Env, st *Step) error {
	e.scr.created = false
	if st.C.Create == nil {
		return assertf("domctl_create: nil spec")
	}
	return nil
}

func doDomctlCheckExists(e *Env, st *Step) error {
	if err := e.Domains.CheckLinks(); err != nil {
		return assertf("domctl_create: %v", err)
	}
	if _, err := e.Domains.ByID(st.C.Create.ID); err == nil {
		if e.scr.created {
			return nil // our own retry already created it
		}
		return assertf("domctl_create: domain %d already exists", st.C.Create.ID)
	}
	return nil
}

func doDomctlInsert(e *Env, st *Step) error {
	if e.scr.created {
		return nil
	}
	spec := st.C.Create
	e.LogWrite("domctl_create: undo insert", LogCostDomctl, func() {
		if d, err := e.Domains.ByID(spec.ID); err == nil {
			_ = e.DestroyDomain(d.ID)
		}
		e.scr.created = false
	})
	if err := e.CreateDomain(*spec); err != nil {
		return assertf("domctl_create: %v", err)
	}
	e.scr.created = true
	return nil
}

func doDomctlDestroy(e *Env, st *Step) error {
	target := int(st.C.Args[1])
	if _, err := e.Domains.ByID(target); err != nil {
		return assertf("domctl_destroy: %v", err)
	}
	return e.DestroyDomain(target)
}

// --- syscall_forward --------------------------------------------------------

// syscallForwardTmpl models the x86-64 syscall path: system calls from
// guest processes trap into the hypervisor, which forwards them to the
// guest kernel (§IV "Syscall retry"). No locks, no critical writes —
// but a fault mid-forward loses the syscall unless it is retried.
var syscallForwardTmpl = []Step{
	{Name: "entry", Instrs: 90, Do: doNop},
	{Name: "forward", Instrs: 120, Do: doTargetDomainCheck},
	{Name: "complete", Instrs: 20, Do: doNop},
}

// --- ept_violation ----------------------------------------------------------

// eptPopulateTmpl/eptUnmapTmpl model an HVM nested-paging fault (§VI-A):
// populate or tear down an EPT mapping. Structurally the pin/unpin twin of
// mmu_update — a mapping count plus a present bit updated in separate
// steps — which is why the paper found HVM and PV injection results "very
// similar": the hazards are the same.
var eptPopulateTmpl = []Step{
	{Name: "vmexit_entry", Instrs: 180, Do: doNop},
	{Name: "lock_p2m", Instrs: 40, Do: doLockPageAlloc},
	{Name: "inc_mapcount", Instrs: 60, Do: doEPTIncMap},
	{Name: "write_ept_entry", Instrs: 110, Do: doNop},
	{Name: "set_present", Instrs: 70, Do: doEPTSetPresent},
	{Name: "window", Instrs: 34, Unmitigated: true, Do: doNop},
	{Name: "unlock_p2m", Instrs: 30, Do: doUnlockPageAlloc},
	{Name: "vmenter", Instrs: 120, Do: doNop},
}

var eptUnmapTmpl = []Step{
	{Name: "vmexit_entry", Instrs: 180, Do: doNop},
	{Name: "lock_p2m", Instrs: 40, Do: doLockPageAlloc},
	{Name: "clear_present", Instrs: 50, Do: doEPTClearPresent},
	{Name: "dec_mapcount", Instrs: 60, Do: doEPTDecMap},
	{Name: "window", Instrs: 34, Unmitigated: true, Do: doNop},
	{Name: "unlock_p2m", Instrs: 30, Do: doUnlockPageAlloc},
	{Name: "vmenter", Instrs: 120, Do: doNop},
}

func eptFrame(e *Env, c *Call) (*mm.PageFrame, error) {
	frame := int(c.Args[1])
	if frame < 0 || frame >= e.Frames.Len() {
		return nil, assertf("ept_violation: bad frame %d", frame)
	}
	return e.Frames.Frame(frame), nil
}

func doEPTIncMap(e *Env, st *Step) error {
	f, err := eptFrame(e, st.C)
	if err != nil {
		return err
	}
	e.logWriteRecord(LogCostMMU, UndoRecord{Desc: "ept_populate: undo inc_mapcount", Kind: UndoFrameUseDelta, Frame: f, Arg: -1})
	f.Type = mm.FramePageTable
	f.IncUse()
	return nil
}

func doEPTSetPresent(e *Env, st *Step) error {
	f, err := eptFrame(e, st.C)
	if err != nil {
		return err
	}
	if f.UseCount != 1 {
		return assertf("ept_populate: mapcount %d on set_present (retry of partial exit?)", f.UseCount)
	}
	f.Validated = true
	return nil
}

func doEPTClearPresent(e *Env, st *Step) error {
	f, err := eptFrame(e, st.C)
	if err != nil {
		return err
	}
	if !f.Validated {
		return assertf("ept_unmap: frame %d not present (retry of partial exit?)", int(st.C.Args[1]))
	}
	e.logWriteRecord(LogCostMMU, UndoRecord{Desc: "ept_unmap: undo clear_present", Kind: UndoFrameRevalidate, Frame: f})
	f.Validated = false
	return nil
}

func doEPTDecMap(e *Env, st *Step) error {
	f, err := eptFrame(e, st.C)
	if err != nil {
		return err
	}
	e.logWriteRecord(LogCostMMU, UndoRecord{Desc: "ept_unmap: undo dec_mapcount", Kind: UndoFrameUseDelta, Frame: f, Arg: 1})
	if err := f.DecUse(); err != nil {
		return assertf("ept_unmap: %v", err)
	}
	if f.UseCount == 0 {
		f.Type = mm.FrameGuest
	}
	return nil
}

// --- io_emulation -----------------------------------------------------------

// ioEmulationTmpl models an emulated device access by an HVM guest:
// decode the instruction, emulate the device register, re-enter. No
// locks, no critical writes — the exit is simply re-executed after
// recovery.
var ioEmulationTmpl = []Step{
	{Name: "vmexit_entry", Instrs: 180, Do: doNop},
	{Name: "decode", Instrs: 140, Do: doTargetDomainCheck},
	{Name: "emulate", Instrs: 160, Do: doNop},
	{Name: "vmenter", Instrs: 120, Do: doNop},
}
