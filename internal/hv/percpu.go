package hv

import (
	"nilihype/internal/hypercall"
	"nilihype/internal/locking"
)

// PerCPU is the hypervisor's per-CPU private area — the analogue of Xen's
// per-CPU data, including the local_irq_count variable the "Clear IRQ
// count" enhancement exists for (§V-A).
type PerCPU struct {
	ID int

	// LocalIRQCount is the interrupt nesting level. Incremented on every
	// interrupt/exception entry, decremented on exit. Because error
	// detection always happens in an exception or NMI context, the
	// detecting CPU's count is nonzero at recovery time; if recovery
	// does not clear it, post-recovery assertions (!in_irq()) fail.
	LocalIRQCount int

	// Env is this CPU's handler execution environment.
	Env *hypercall.Env

	// Current is the in-flight call, nil between requests. A call still
	// present at recovery time was interrupted and needs retry.
	Current *hypercall.Call
	// CurrentProg/CurrentStep locate execution within the program.
	CurrentProg hypercall.Program
	CurrentStep int

	// InIRQProgram marks execution inside an interrupt handler program
	// (as opposed to a hypercall); IRQActivity names it ("timer", ...).
	InIRQProgram bool
	IRQActivity  string

	// PendingPanic, when non-empty, fires a panic at the next program
	// step (injector-scheduled delayed detection).
	PendingPanic string

	// Wedged marks a CPU stuck making no progress (wild jump / infinite
	// loop after a fault). Interrupts are implicitly disabled.
	Wedged bool

	// Spinning, when non-nil, is the held lock this CPU is spinning on.
	// A spinning CPU has interrupts disabled (spin_lock_irqsave), so its
	// software timers stall and the watchdog eventually fires.
	Spinning *locking.Lock

	// FSGSSaved marks that the recovery path captured the guest FS/GS
	// base registers at detection time (§IV "Save FS/GS"). Without it,
	// a vCPU whose CPU was in hypervisor context loses those registers.
	FSGSSaved bool

	// WasBusyAtDiscard records whether the CPU was inside hypervisor
	// execution when its thread was discarded (recovery bookkeeping).
	WasBusyAtDiscard bool

	// abandonedUnmitigated records that the call abandoned on this CPU
	// was interrupted inside an unmitigated window (§IV residual): its
	// retry is poisoned — the undo log cannot be trusted.
	abandonedUnmitigated bool

	// irqFixedSteps caches the timer-IRQ program steps whose closures
	// capture only per-CPU state. The handler is rebuilt on every timer
	// tick; without the cache each rebuild re-allocates these closures.
	irqFixedSteps irqFixedSteps

	// irqProg is the reusable step buffer the timer interrupt handler is
	// built into on every tick (the hypercall analogue is Env's program
	// buffer). Safe to recycle because at most one program is in flight
	// per CPU — a busy or stuck CPU refuses further interrupts — and an
	// interrupted IRQ program is discarded by recovery, never resumed.
	irqProg hypercall.Program
}

// irqFixedSteps holds a CPU's cached fixed IRQ program steps (see the
// PerCPU field of the same name; built lazily by Hypervisor.irqFixed).
type irqFixedSteps struct {
	enterIRQ      hypercall.Step
	reprogramAPIC hypercall.Step
	exitIRQ       hypercall.Step
	lockRunq      hypercall.Step
	creditTick    hypercall.Step
	unlockRunq    hypercall.Step
}

// Busy reports whether the CPU is currently inside hypervisor execution.
func (pc *PerCPU) Busy() bool { return pc.Current != nil || pc.InIRQProgram }

// Stuck reports whether the CPU is making no progress (wedged or spinning).
func (pc *PerCPU) Stuck() bool { return pc.Wedged || pc.Spinning != nil }
