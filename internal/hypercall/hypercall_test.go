package hypercall

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/grant"
	"nilihype/internal/locking"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/xentime"
)

// nullAPIC satisfies xentime.Programmer.
type nullAPIC struct{}

func (nullAPIC) ArmTimer(int, time.Duration) {}
func (nullAPIC) DisarmTimer(int)             {}

// fixture is a miniature hypervisor state for handler tests.
type fixture struct {
	env    *Env
	locks  *locking.Registry
	frames *mm.FrameTable
	heap   *mm.Heap
	sch    *sched.Scheduler
	doms   *dom.List
	broker *evtchn.Broker
	d0     *dom.Domain
	d1     *dom.Domain
	woken  []*sched.VCPU
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	fx := &fixture{}
	fx.locks = locking.NewRegistry()
	fx.frames = mm.NewFrameTable(512)
	fx.heap = mm.NewHeap(fx.frames, fx.locks, 0, 128)
	fx.sch = sched.NewScheduler(2, fx.locks)
	fx.doms = dom.NewList()
	statics := NewStatics(fx.locks)

	// Domain 1 with one vCPU on cpu0 and frames [128,256).
	obj := fx.heap.Alloc(2, "domain1")
	fx.d1 = &dom.Domain{
		ID: 1, Name: "app1", MemStart: 128, MemCount: 128, TotPages: 64,
		Obj: obj, Events: evtchn.NewTable(1, 16),
		GrantTab: grant.NewTable(1, 16), Maptrack: grant.NewMaptrack(1),
	}
	fx.d1.PageAllocLock = fx.heap.AddLock(obj, "page_alloc_lock")
	fx.d1.GrantLock = fx.heap.AddLock(obj, "grant_lock")
	fx.d1.VCPUs = append(fx.d1.VCPUs, fx.sch.AddVCPU(1, 0, 0))
	fx.doms.Insert(fx.d1)
	fx.broker = evtchn.NewBroker()
	fx.broker.Register(fx.d1.Events)
	// A dom0-style peer so inter-domain sends have a destination.
	fx.d0 = &dom.Domain{ID: 0, Name: "priv", IsPriv: true,
		Events:   evtchn.NewTable(0, 16),
		GrantTab: grant.NewTable(0, 16), Maptrack: grant.NewMaptrack(0)}
	fx.doms.Insert(fx.d0)
	fx.broker.Register(fx.d0.Events)
	back, err := fx.d0.Events.AllocUnbound(1)
	if err != nil {
		t.Fatal(err)
	}
	fx.d1.RingPort, err = fx.broker.BindInterdomain(1, 0, back)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.frames.AssignRange(128, 128, 1, mm.FrameGuest); err != nil {
		t.Fatal(err)
	}

	fx.env = &Env{
		CPU:            0,
		Frames:         fx.frames,
		Heap:           fx.heap,
		Sched:          fx.sch,
		Timers:         xentime.NewSubsystem(2, nullAPIC{}),
		Domains:        fx.doms,
		Broker:         fx.broker,
		Statics:        statics,
		RNG:            rand.New(rand.NewPCG(1, 2)),
		Now:            func() time.Duration { return 0 },
		Wake:           func(v *sched.VCPU) { fx.woken = append(fx.woken, v); fx.sch.Wake(v) },
		Undo:           NewUndoLog(),
		LoggingEnabled: true,
		RecoveryPrep:   true,
	}
	fx.env.CreateDomain = func(spec CreateSpec) error {
		fx.doms.Insert(&dom.Domain{ID: spec.ID, Name: spec.Name,
			GrantTab: grant.NewTable(spec.ID, 16), Maptrack: grant.NewMaptrack(spec.ID)})
		return nil
	}
	fx.env.DestroyDomain = func(id int) error {
		d, err := fx.doms.ByID(id)
		if err != nil {
			return err
		}
		fx.doms.Remove(d)
		return nil
	}
	return fx
}

// runAll executes a full program, failing the test on any step error.
func (fx *fixture) runAll(t *testing.T, call *Call) {
	t.Helper()
	if err := fx.run(call, -1); err != nil {
		t.Fatalf("program failed: %v", err)
	}
}

// run executes the program, stopping (abandoning) after step stopAfter if
// stopAfter >= 0. Returns the first step error.
func (fx *fixture) run(call *Call, stopAfter int) error {
	fx.env.Call = call
	fx.env.ResetProgramState()
	prog, err := Build(fx.env, call)
	if err != nil {
		return err
	}
	for i := range prog {
		if err := prog[i].Do(fx.env, &prog[i]); err != nil {
			return err
		}
		if stopAfter >= 0 && i == stopAfter {
			return nil
		}
	}
	fx.env.Undo.Clear()
	return nil
}

// stepIndex finds a step by name, failing the test if absent.
func stepIndex(t *testing.T, env *Env, call *Call, name string) int {
	t.Helper()
	env.Call = call
	prog, err := Build(env, call)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if prog[i].Name == name {
			return i
		}
	}
	t.Fatalf("step %q not in program for %v", name, call)
	return -1
}

func TestOpStrings(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpMMUUpdate, "mmu_update"}, {OpMemoryOp, "memory_op"},
		{OpGrantTableOp, "grant_table_op"}, {OpEventChannelOp, "event_channel_op"},
		{OpSchedOp, "sched_op"}, {OpSetTimerOp, "set_timer_op"},
		{OpConsoleIO, "console_io"}, {OpVCPUOp, "vcpu_op"},
		{OpMulticall, "multicall"}, {OpDomctl, "domctl"},
		{OpSyscallForward, "syscall_forward"}, {Op(99), "op(99)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestUnknownOpBuildFails(t *testing.T) {
	fx := newFixture(t)
	if _, err := Build(fx.env, &Call{Op: Op(99)}); err == nil {
		t.Fatal("Build accepted unknown op")
	}
}

func TestMMUPinUnpinRoundTrip(t *testing.T) {
	fx := newFixture(t)
	frame := 200
	pin := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, uint64(frame)}}
	fx.runAll(t, pin)
	f := fx.frames.Frame(frame)
	if f.Type != mm.FramePageTable || f.UseCount != 1 || !f.Validated {
		t.Fatalf("after pin: %+v", *f)
	}
	if fx.d1.PageAllocLock.Held() {
		t.Fatal("page_alloc lock leaked")
	}
	unpin := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUUnpin, uint64(frame)}}
	fx.runAll(t, unpin)
	if f.Type != mm.FrameGuest || f.UseCount != 0 || f.Validated {
		t.Fatalf("after unpin: %+v", *f)
	}
}

func TestMMUPinBadFrameAsserts(t *testing.T) {
	fx := newFixture(t)
	call := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 99999}}
	err := fx.run(call, -1)
	if err == nil || !strings.Contains(err.Error(), "ASSERT") {
		t.Fatalf("err = %v, want assertion", err)
	}
}

// TestNonIdempotentRetryWithoutUndoAsserts reproduces the §IV failure: a
// partial pin that bumped the refcount, retried without rollback,
// double-increments and trips the validation assertion.
func TestNonIdempotentRetryWithoutUndoAsserts(t *testing.T) {
	fx := newFixture(t)
	fx.env.LoggingEnabled = false
	frame := 200
	pin := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, uint64(frame)}}
	idx := stepIndex(t, fx.env, pin, "inc_refcount")
	if err := fx.run(pin, idx); err != nil {
		t.Fatal(err)
	}
	// Recovery: force-release leaked locks, then retry from scratch.
	fx.locks.UnlockHeapLocks()
	err := fx.run(pin, -1)
	if err == nil || !strings.Contains(err.Error(), "refcount 2") {
		t.Fatalf("retry err = %v, want refcount assertion", err)
	}
}

// TestNonIdempotentRetryWithUndoSucceeds: with logging, rollback restores
// the count and the retry completes cleanly.
func TestNonIdempotentRetryWithUndoSucceeds(t *testing.T) {
	fx := newFixture(t)
	frame := 200
	pin := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, uint64(frame)}}
	idx := stepIndex(t, fx.env, pin, "inc_refcount")
	if err := fx.run(pin, idx); err != nil {
		t.Fatal(err)
	}
	if fx.env.Undo.Len() == 0 {
		t.Fatal("no undo records logged")
	}
	fx.locks.UnlockHeapLocks()
	fx.env.Undo.Rollback()
	if got := fx.frames.Frame(frame).UseCount; got != 0 {
		t.Fatalf("UseCount after rollback = %d, want 0", got)
	}
	fx.runAll(t, pin)
	f := fx.frames.Frame(frame)
	if f.UseCount != 1 || !f.Validated {
		t.Fatalf("after retried pin: %+v", *f)
	}
}

func TestMemoryOpAdjustsTotPages(t *testing.T) {
	fx := newFixture(t)
	before := fx.d1.TotPages
	call := &Call{Op: OpMemoryOp, Dom: 1, Args: [4]uint64{MemPopulate, 8}}
	fx.runAll(t, call)
	if fx.d1.TotPages != before+8 {
		t.Fatalf("TotPages = %d, want %d", fx.d1.TotPages, before+8)
	}
	rel := &Call{Op: OpMemoryOp, Dom: 1, Args: [4]uint64{MemRelease, 8}}
	fx.runAll(t, rel)
	if fx.d1.TotPages != before {
		t.Fatalf("TotPages = %d, want %d", fx.d1.TotPages, before)
	}
	if fx.env.Statics.HeapLock.Held() {
		t.Fatal("heap lock leaked")
	}
}

func TestMemoryOpRetryWithoutUndoCanOverflow(t *testing.T) {
	fx := newFixture(t)
	fx.env.LoggingEnabled = false
	// Fill close to the limit so the double-apply trips the bound.
	fx.d1.TotPages = fx.d1.MemCount - 10
	call := &Call{Op: OpMemoryOp, Dom: 1, Args: [4]uint64{MemPopulate, 8}}
	idx := stepIndex(t, fx.env, call, "adjust_tot_pages")
	if err := fx.run(call, idx); err != nil {
		t.Fatal(err)
	}
	fx.locks.UnlockStaticSegment()
	err := fx.run(call, -1)
	if err == nil || !strings.Contains(err.Error(), "tot_pages") {
		t.Fatalf("retry err = %v, want tot_pages assertion", err)
	}
}

func TestMemoryOpFailsOnCorruptedHeap(t *testing.T) {
	fx := newFixture(t)
	// CorruptFreeList damages an entry in the free list's hot region;
	// keep damaging until the allocator's check window sees it.
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 64 && fx.heap.Check() == nil; i++ {
		fx.heap.CorruptFreeList(rng)
	}
	if fx.heap.Check() == nil {
		t.Fatal("could not land free-list damage in the check window")
	}
	call := &Call{Op: OpMemoryOp, Dom: 1, Args: [4]uint64{MemPopulate, 1}}
	if err := fx.run(call, -1); err == nil {
		t.Fatal("memory_op succeeded on corrupted heap")
	}
}

func TestGrantMapUnmapRoundTrip(t *testing.T) {
	fx := newFixture(t)
	frame := 190
	if err := fx.d1.GrantTab.Grant(5, frame, false); err != nil {
		t.Fatal(err)
	}
	mapc := &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantMap, 5, uint64(frame)}}
	fx.runAll(t, mapc)
	if fx.d1.Maptrack.Active() != 1 || fx.frames.Frame(frame).UseCount != 1 {
		t.Fatalf("after map: active=%d count=%d", fx.d1.Maptrack.Active(), fx.frames.Frame(frame).UseCount)
	}
	unmap := &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantUnmap, 5, uint64(frame)}}
	fx.runAll(t, unmap)
	if fx.d1.Maptrack.Active() != 0 || fx.frames.Frame(frame).UseCount != 0 {
		t.Fatalf("after unmap: active=%d count=%d", fx.d1.Maptrack.Active(), fx.frames.Frame(frame).UseCount)
	}
	// The guest can now revoke its grant.
	if err := fx.d1.GrantTab.Revoke(5); err != nil {
		t.Fatal(err)
	}
}

func TestGrantMapUngrantedRefAsserts(t *testing.T) {
	fx := newFixture(t)
	mapc := &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantMap, 5, 190}}
	if err := fx.run(mapc, -1); err == nil {
		t.Fatal("map of ungranted ref succeeded")
	}
}

func TestGrantMapRetryWithoutUndoAsserts(t *testing.T) {
	fx := newFixture(t)
	fx.env.LoggingEnabled = false
	if err := fx.d1.GrantTab.Grant(5, 190, false); err != nil {
		t.Fatal(err)
	}
	mapc := &Call{Op: OpGrantTableOp, Dom: 1, Args: [4]uint64{GrantMap, 5, 190}}
	idx := stepIndex(t, fx.env, mapc, "map_track")
	if err := fx.run(mapc, idx); err != nil {
		t.Fatal(err)
	}
	fx.locks.UnlockHeapLocks()
	err := fx.run(mapc, -1)
	if err == nil || !strings.Contains(err.Error(), "already mapped") {
		t.Fatalf("retry err = %v, want already-mapped assertion", err)
	}
}

func TestEventChannelSendReachesPeer(t *testing.T) {
	// d1 notifies its I/O ring: the PrivVM-side port goes pending.
	fx := newFixture(t)
	call := &Call{Op: OpEventChannelOp, Dom: 1, Args: [4]uint64{0, 0, uint64(fx.d1.RingPort)}}
	fx.runAll(t, call)
	if got := fx.d0.Events.PendingPorts(); len(got) != 1 {
		t.Fatalf("PrivVM pending = %v, want the ring backend port", got)
	}
	// Re-sending is idempotent (level-triggered bit).
	fx.runAll(t, call)
	if got := fx.d0.Events.PendingPorts(); len(got) != 1 {
		t.Fatalf("pending after resend = %v", got)
	}
}

func TestEventChannelSendWakesBlockedPeer(t *testing.T) {
	// The reverse direction: the PrivVM backend notifies d1, whose
	// blocked vCPU must wake.
	fx := newFixture(t)
	v := fx.d1.VCPUs[0]
	v.State = sched.Blocked
	fx.sch.RepairFromPerCPU() // normalizes: blocked vCPU leaves runqueue
	backPort, _ := fx.d1.Events.Port(fx.d1.RingPort)
	call := &Call{Op: OpEventChannelOp, Dom: 0, Args: [4]uint64{0, 0, uint64(backPort.RemotePort)}}
	fx.runAll(t, call)
	if got := fx.d1.Events.PendingPorts(); len(got) != 1 || got[0] != fx.d1.RingPort {
		t.Fatalf("d1 pending = %v, want ring port", got)
	}
	if len(fx.woken) != 1 || fx.woken[0] != v {
		t.Fatalf("woken = %v", fx.woken)
	}
	if v.State != sched.Runnable {
		t.Fatalf("vcpu state = %v, want runnable", v.State)
	}
}

func TestEventChannelBadPortIsGuestError(t *testing.T) {
	// An invalid or unbound port is a guest bug: Xen returns -EINVAL;
	// the hypervisor must not assert.
	fx := newFixture(t)
	call := &Call{Op: OpEventChannelOp, Dom: 1, Args: [4]uint64{0, 0, 99}}
	if err := fx.run(call, -1); err != nil {
		t.Fatalf("send on invalid port paniced the hypervisor: %v", err)
	}
	p, err := fx.d1.Events.AllocUnbound(0)
	if err != nil {
		t.Fatal(err)
	}
	call2 := &Call{Op: OpEventChannelOp, Dom: 1, Args: [4]uint64{0, 0, uint64(p)}}
	if err := fx.run(call2, -1); err != nil {
		t.Fatalf("send on unbound port paniced the hypervisor: %v", err)
	}
	if got := fx.d0.Events.PendingPorts(); len(got) != 0 {
		t.Fatalf("bad sends delivered events: %v", got)
	}
}

func TestSchedOpYieldSwitches(t *testing.T) {
	fx := newFixture(t)
	// Two vCPUs on cpu0: d1v0 plus one more domain.
	d2v := fx.sch.AddVCPU(2, 0, 0)
	fx.doms.Insert(&dom.Domain{ID: 2, VCPUs: []*sched.VCPU{d2v}})
	fx.sch.BeginSwitch(0).Complete() // d1v0 running
	call := &Call{Op: OpSchedOp, Dom: 1, Args: [4]uint64{SchedYield}}
	fx.runAll(t, call)
	if fx.sch.Curr(0) != d2v {
		t.Fatalf("curr = %v, want d2v0 after yield", fx.sch.Curr(0))
	}
	if got := fx.sch.CheckConsistency(); len(got) != 0 {
		t.Fatalf("inconsistencies after yield: %v", got)
	}
	if fx.sch.RunqueueLock(0).Held() {
		t.Fatal("runq lock leaked")
	}
}

func TestSchedOpBlockIdlesCPU(t *testing.T) {
	fx := newFixture(t)
	fx.sch.BeginSwitch(0).Complete()
	call := &Call{Op: OpSchedOp, Dom: 1, Args: [4]uint64{SchedBlock}}
	fx.runAll(t, call)
	if fx.sch.Curr(0) != nil {
		t.Fatal("CPU not idle after lone vCPU blocked")
	}
	if fx.d1.VCPUs[0].State != sched.Blocked {
		t.Fatalf("state = %v, want blocked", fx.d1.VCPUs[0].State)
	}
}

func TestSchedOpAbandonedMidSwitchLeavesInconsistency(t *testing.T) {
	fx := newFixture(t)
	d2v := fx.sch.AddVCPU(2, 0, 0)
	fx.doms.Insert(&dom.Domain{ID: 2, VCPUs: []*sched.VCPU{d2v}})
	fx.sch.BeginSwitch(0).Complete()
	call := &Call{Op: OpSchedOp, Dom: 1, Args: [4]uint64{SchedYield}}
	idx := stepIndex(t, fx.env, call, "set_curr")
	if err := fx.run(call, idx); err != nil {
		t.Fatal(err)
	}
	if len(fx.sch.CheckConsistency()) == 0 {
		t.Fatal("abandoned switch reported consistent")
	}
	if len(fx.env.HeldLocks()) == 0 {
		t.Fatal("abandoned program holds no locks (runq lock expected)")
	}
}

func TestSetTimerAddsAndPrograms(t *testing.T) {
	fx := newFixture(t)
	call := &Call{Op: OpSetTimerOp, Dom: 1, Args: [4]uint64{0, uint64(5 * time.Millisecond)}}
	fx.runAll(t, call)
	if fx.env.Timers.PendingCount(0) != 1 {
		t.Fatalf("pending timers = %d, want 1", fx.env.Timers.PendingCount(0))
	}
	if d, ok := fx.env.Timers.NextDeadline(0); !ok || d != 5*time.Millisecond {
		t.Fatalf("deadline = %v,%v", d, ok)
	}
}

func TestConsoleIOTakesStaticLock(t *testing.T) {
	fx := newFixture(t)
	call := &Call{Op: OpConsoleIO, Dom: 1, Args: [4]uint64{0, 32}}
	idx := stepIndex(t, fx.env, call, "lock_console")
	if err := fx.run(call, idx); err != nil {
		t.Fatal(err)
	}
	if !fx.env.Statics.Console.Held() {
		t.Fatal("console lock not held mid-program")
	}
	// Abandon: the lock stays held — the §V-A static-lock hazard.
	held := fx.locks.HeldLocks(locking.Static)
	if len(held) != 1 || held[0] != fx.env.Statics.Console {
		t.Fatalf("held static locks = %v", held)
	}
}

func TestVCPUOpCompletes(t *testing.T) {
	fx := newFixture(t)
	fx.runAll(t, &Call{Op: OpVCPUOp, Dom: 1})
}

func TestSyscallForwardCompletes(t *testing.T) {
	fx := newFixture(t)
	fx.runAll(t, &Call{Op: OpSyscallForward, Dom: 1})
}

func TestMulticallCompletionLogSkipsDone(t *testing.T) {
	fx := newFixture(t)
	batch := &Call{Op: OpMulticall, Dom: 1, Batch: []*Call{
		{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 201}},
		{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 202}},
		{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 203}},
	}}
	// Run until the first component's completion is logged.
	idx := stepIndex(t, fx.env, batch, "log_completion[0]")
	if err := fx.run(batch, idx); err != nil {
		t.Fatal(err)
	}
	if batch.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", batch.Completed)
	}
	fx.locks.UnlockHeapLocks()
	fx.env.Undo.Clear() // completed component's records not replayed
	// Retry: rebuild must skip component 0.
	fx.env.Call = batch
	prog, err := Build(fx.env, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog {
		if s.Name == "log_completion[0]" {
			t.Fatal("retried batch re-executes completed component")
		}
	}
	if err := fx.run(batch, -1); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if batch.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", batch.Completed)
	}
	// Frame 201 pinned once (not twice), 202/203 pinned.
	for _, fr := range []int{201, 202, 203} {
		if got := fx.frames.Frame(fr).UseCount; got != 1 {
			t.Fatalf("frame %d UseCount = %d, want 1", fr, got)
		}
	}
}

func TestDomctlCreateAndDestroy(t *testing.T) {
	fx := newFixture(t)
	create := &Call{Op: OpDomctl, Dom: 0, Create: &CreateSpec{ID: 9, Name: "new", MemPages: 4, PinCPU: 1},
		Args: [4]uint64{DomctlCreate}}
	fx.runAll(t, create)
	if _, err := fx.doms.ByID(9); err != nil {
		t.Fatalf("domain not created: %v", err)
	}
	destroy := &Call{Op: OpDomctl, Dom: 0, Args: [4]uint64{DomctlDestroy, 9}}
	fx.runAll(t, destroy)
	if _, err := fx.doms.ByID(9); err == nil {
		t.Fatal("domain not destroyed")
	}
	if fx.env.Statics.DomList.Held() {
		t.Fatal("domlist lock leaked")
	}
}

func TestDomctlCreateRetryAfterUndoSucceeds(t *testing.T) {
	fx := newFixture(t)
	create := &Call{Op: OpDomctl, Dom: 0, Create: &CreateSpec{ID: 9, Name: "new"},
		Args: [4]uint64{DomctlCreate}}
	idx := stepIndex(t, fx.env, create, "alloc_and_insert")
	if err := fx.run(create, idx); err != nil {
		t.Fatal(err)
	}
	fx.locks.UnlockStaticSegment()
	fx.env.Undo.Rollback()
	if _, err := fx.doms.ByID(9); err == nil {
		t.Fatal("rollback did not remove inserted domain")
	}
	fx.runAll(t, create)
	if _, err := fx.doms.ByID(9); err != nil {
		t.Fatal("retried create failed")
	}
}

func TestDomctlCreateOnCorruptedListAsserts(t *testing.T) {
	fx := newFixture(t)
	// Any structural link damage fails the create path's full-list check.
	fx.doms.CorruptLink(rand.New(rand.NewPCG(3, 3)))
	if fx.doms.CheckLinks() == nil {
		t.Fatal("CorruptLink produced no detectable damage")
	}
	create := &Call{Op: OpDomctl, Dom: 0, Create: &CreateSpec{ID: 9},
		Args: [4]uint64{DomctlCreate}}
	if err := fx.run(create, -1); err == nil {
		t.Fatal("create on corrupted list succeeded")
	}
}

func TestSpinErrorOnHeldLock(t *testing.T) {
	fx := newFixture(t)
	fx.env.Statics.Console.TryAcquire(1) // another (discarded) context holds it
	call := &Call{Op: OpConsoleIO, Dom: 1}
	err := fx.run(call, -1)
	var spin *SpinError
	if !errors.As(err, &spin) {
		t.Fatalf("err = %v, want SpinError", err)
	}
	if spin.Lock != fx.env.Statics.Console {
		t.Fatal("SpinError names wrong lock")
	}
	if !strings.Contains(spin.Error(), "console_lock") {
		t.Fatalf("Error() = %q", spin.Error())
	}
}

func TestUndoLogClearOnCompletion(t *testing.T) {
	fx := newFixture(t)
	pin := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 210}}
	fx.runAll(t, pin)
	if fx.env.Undo.Len() != 0 {
		t.Fatalf("undo log has %d records after completion", fx.env.Undo.Len())
	}
	if fx.env.Undo.Writes == 0 {
		t.Fatal("no undo writes counted")
	}
}

func TestLoggingOverheadCharged(t *testing.T) {
	fx := newFixture(t)
	pin := &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, 210}}
	fx.runAll(t, pin)
	if fx.env.ExtraCycles == 0 {
		t.Fatal("no logging cycles charged with logging on")
	}
	charged := fx.env.ExtraCycles

	fx2 := newFixture(t)
	fx2.env.LoggingEnabled = false
	fx2.runAll(t, pin2(210))
	if fx2.env.ExtraCycles != 0 {
		t.Fatal("logging cycles charged with logging off")
	}
	if charged < LogCostMMU {
		t.Fatalf("pin charged %d cycles, want >= 1 log write", charged)
	}
}

func pin2(frame int) *Call {
	return &Call{Op: OpMMUUpdate, Dom: 1, Args: [4]uint64{MMUPin, uint64(frame)}}
}

func TestProgramInstrs(t *testing.T) {
	p := Program{{Instrs: 10}, {Instrs: 20}, {Instrs: 5}}
	if got := p.Instrs(); got != 35 {
		t.Fatalf("Instrs() = %d, want 35", got)
	}
}

func TestCallString(t *testing.T) {
	c := &Call{Op: OpMMUUpdate, Dom: 2, VCPU: 0, Args: [4]uint64{MMUPin}}
	if !strings.Contains(c.String(), "mmu_update") {
		t.Fatalf("String() = %q", c.String())
	}
	mc := &Call{Op: OpMulticall, Dom: 1, Batch: []*Call{c}, Completed: 1}
	if !strings.Contains(mc.String(), "1 components") || !strings.Contains(mc.String(), "1 done") {
		t.Fatalf("String() = %q", mc.String())
	}
}

func TestUndoLogRollbackOrder(t *testing.T) {
	u := NewUndoLog()
	var got []int
	u.Record("a", func() { got = append(got, 1) })
	u.Record("b", func() { got = append(got, 2) })
	u.Record("c", func() { got = append(got, 3) })
	if n := u.Rollback(); n != 3 {
		t.Fatalf("Rollback = %d, want 3", n)
	}
	if len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Fatalf("rollback order = %v, want reverse [3 2 1]", got)
	}
	if u.Len() != 0 || u.Rollbacks != 1 {
		t.Fatalf("len=%d rollbacks=%d", u.Len(), u.Rollbacks)
	}
	if n := u.Rollback(); n != 0 {
		t.Fatal("empty rollback applied records")
	}
}

func TestStaticsDeclaredInSegment(t *testing.T) {
	reg := locking.NewRegistry()
	s := NewStatics(reg)
	staticN, _ := reg.Counts()
	if staticN != 3 {
		t.Fatalf("static lock count = %d, want 3", staticN)
	}
	for _, l := range []string{s.Console.Name(), s.DomList.Name(), s.HeapLock.Name()} {
		if l == "" {
			t.Fatal("unnamed static lock")
		}
	}
}

func TestEPTPopulateUnmapRoundTrip(t *testing.T) {
	fx := newFixture(t)
	frame := 205
	pop := &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTPopulate, uint64(frame)}}
	fx.runAll(t, pop)
	f := fx.frames.Frame(frame)
	if f.UseCount != 1 || !f.Validated {
		t.Fatalf("after populate: %+v", *f)
	}
	if fx.d1.PageAllocLock.Held() {
		t.Fatal("p2m lock leaked")
	}
	unmap := &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTUnmap, uint64(frame)}}
	fx.runAll(t, unmap)
	if f.UseCount != 0 || f.Validated {
		t.Fatalf("after unmap: %+v", *f)
	}
}

func TestEPTPopulateRetryWithoutUndoAsserts(t *testing.T) {
	// The HVM twin of the §IV non-idempotence hazard.
	fx := newFixture(t)
	fx.env.LoggingEnabled = false
	pop := &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTPopulate, 205}}
	idx := stepIndex(t, fx.env, pop, "inc_mapcount")
	if err := fx.run(pop, idx); err != nil {
		t.Fatal(err)
	}
	fx.locks.UnlockHeapLocks()
	err := fx.run(pop, -1)
	if err == nil || !strings.Contains(err.Error(), "mapcount 2") {
		t.Fatalf("retry err = %v, want mapcount assertion", err)
	}
}

func TestEPTPopulateRetryWithUndoSucceeds(t *testing.T) {
	fx := newFixture(t)
	pop := &Call{Op: OpEPTViolation, Dom: 1, Args: [4]uint64{EPTPopulate, 205}}
	idx := stepIndex(t, fx.env, pop, "inc_mapcount")
	if err := fx.run(pop, idx); err != nil {
		t.Fatal(err)
	}
	fx.locks.UnlockHeapLocks()
	fx.env.Undo.Rollback()
	fx.runAll(t, pop)
	if got := fx.frames.Frame(205).UseCount; got != 1 {
		t.Fatalf("UseCount after retried populate = %d, want 1", got)
	}
}

func TestIOEmulationIdempotent(t *testing.T) {
	fx := newFixture(t)
	call := &Call{Op: OpIOEmulation, Dom: 1}
	fx.runAll(t, call)
	fx.runAll(t, call) // re-execution is harmless
	if fx.env.Undo.Writes != 0 {
		t.Fatal("io_emulation logged critical writes")
	}
}

func TestIOEmulationFailsOnCorruptedDomList(t *testing.T) {
	fx := newFixture(t)
	// Traversals fail only when they cross the damage point, so damage
	// the list until looking up d0 (second in link order, behind d1)
	// fails, then decode for d0 must hit the corruption.
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 64; i++ {
		fx.doms.CorruptLink(rng)
		if _, err := fx.doms.ByID(0); err != nil {
			break
		}
	}
	if _, err := fx.doms.ByID(0); err == nil {
		t.Fatal("could not land damage before d0 in the walk")
	}
	if err := fx.run(&Call{Op: OpIOEmulation, Dom: 0}, -1); err == nil {
		t.Fatal("decode succeeded on corrupted domain list")
	}
}
