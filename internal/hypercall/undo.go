package hypercall

import (
	"nilihype/internal/dom"
	"nilihype/internal/grant"
	"nilihype/internal/mm"
)

// UndoKind selects a data-driven undo action. The hot handlers (MMU
// pin/unpin, memory_op, grant map/unmap, EPT populate/unmap) log one undo
// record per critical write on the campaign fast path; closure-based
// records would allocate a capture per write, so the common reversals are
// encoded as plain data applied by UndoRecord.apply instead. UndoFunc
// remains for the rare records (domctl) whose reversal is irreducibly a
// callback.
type UndoKind uint8

// Undo record kinds.
const (
	// UndoFunc runs the record's Undo closure (legacy/rare path).
	UndoFunc UndoKind = iota
	// UndoFrameUseDelta adds Arg to Frame.UseCount (raw counter reversal,
	// deliberately bypassing the IncUse/DecUse assertions: rollback must
	// restore state even when the forward path's invariants no longer
	// hold).
	UndoFrameUseDelta
	// UndoFrameRevalidate sets Frame.Validated back to true.
	UndoFrameRevalidate
	// UndoTotPagesDelta adds Arg to Dom.TotPages.
	UndoTotPagesDelta
	// UndoMaptrackUnmap reverses a grant map: Dom.Maptrack.Unmap(Arg,
	// Dom.GrantTab) with Arg holding the map handle.
	UndoMaptrackUnmap
	// UndoMaptrackMap reverses a grant unmap: Dom.Maptrack.Map(Dom.GrantTab,
	// Arg) with Arg holding the grant ref.
	UndoMaptrackMap
)

// UndoRecord is one logged critical-variable write. Kind selects how the
// write is reversed; the pointer/Arg fields carry the target state.
type UndoRecord struct {
	Desc string
	Kind UndoKind

	// Undo is the UndoFunc reversal callback (nil for data-driven kinds).
	Undo func()

	Frame *mm.PageFrame
	Dom   *dom.Domain
	Arg   int
}

// apply performs the reversal.
func (r *UndoRecord) apply() {
	switch r.Kind {
	case UndoFunc:
		r.Undo()
	case UndoFrameUseDelta:
		r.Frame.UseCount += r.Arg
	case UndoFrameRevalidate:
		r.Frame.Validated = true
	case UndoTotPagesDelta:
		r.Dom.TotPages += r.Arg
	case UndoMaptrackUnmap:
		r.Dom.Maptrack.Unmap(grant.Handle(r.Arg), r.Dom.GrantTab)
	case UndoMaptrackMap:
		r.Dom.Maptrack.Map(r.Dom.GrantTab, r.Arg)
	}
}

// UndoLog holds the undo records of the call currently executing on one
// CPU. The mitigation protocol (§IV) is:
//
//   - During a hypercall, each critical write is logged just before it is
//     performed.
//   - If the hypercall completes, the log is discarded — nothing to undo.
//   - If recovery interrupts the hypercall, the records are applied in
//     reverse order *before* the hypercall is retried, so the retry starts
//     from consistent state instead of re-applying non-idempotent updates.
type UndoLog struct {
	records []UndoRecord

	// Writes counts records ever logged (overhead accounting/tests).
	Writes uint64
	// Rollbacks counts recovery-time rollbacks performed.
	Rollbacks uint64
}

// NewUndoLog returns an empty log.
func NewUndoLog() *UndoLog { return &UndoLog{} }

// Record appends a closure-based undo action.
func (u *UndoLog) Record(desc string, undo func()) {
	u.records = append(u.records, UndoRecord{Desc: desc, Kind: UndoFunc, Undo: undo})
	u.Writes++
}

// RecordData appends a data-driven undo record.
func (u *UndoLog) RecordData(r UndoRecord) {
	u.records = append(u.records, r)
	u.Writes++
}

// Len returns the number of pending records.
func (u *UndoLog) Len() int { return len(u.records) }

// Clear discards all records (call completed successfully). Capacity is
// kept: the log belongs to a per-CPU Env that lives for the whole run.
func (u *UndoLog) Clear() {
	for i := range u.records {
		u.records[i] = UndoRecord{}
	}
	u.records = u.records[:0]
}

// Rollback applies all records in reverse order and clears the log.
// Returns the number of records applied.
func (u *UndoLog) Rollback() int {
	n := len(u.records)
	for i := n - 1; i >= 0; i-- {
		u.records[i].apply()
	}
	u.Clear()
	if n > 0 {
		u.Rollbacks++
	}
	return n
}
