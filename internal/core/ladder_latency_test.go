package core

import (
	"testing"
	"time"
)

// TestLegacyWorstCaseLatencyUnchanged pins the pre-existing configurations'
// worst-case bounds to their exact values from before the PrivVM-restart
// rung and the IO-APIC reprogram enhancement existed. The campaign's run
// horizon is derived from these bounds, so any drift here silently shifts
// every legacy run's simulated-time budget and can flip marginal
// FailReasons — this test turns that into a loud failure.
func TestLegacyWorstCaseLatencyUnchanged(t *testing.T) {
	const frames512MB = 512 * 256
	for _, tt := range []struct {
		name string
		cfg  Config
		want time.Duration
	}{
		{"default-microreset", DefaultConfig(), 2312500 * time.Nanosecond},
		{"microreboot", Config{Mechanism: Microreboot}, 463625 * time.Microsecond},
		{"hybrid-ladder", HybridConfig(), 965937500 * time.Nanosecond},
	} {
		if got := tt.cfg.WorstCaseLatency(frames512MB); got != tt.want {
			t.Errorf("%s: WorstCaseLatency = %v, want %v (legacy horizon shifted)", tt.name, got, tt.want)
		}
	}
}

// TestFullLadderWorstCaseCoversPrivVMRestart: the full ladder's bound must
// strictly dominate the hybrid ladder's by at least the PrivVM reboot cost
// — the horizon has to leave room for the third rung to run to completion.
func TestFullLadderWorstCaseCoversPrivVMRestart(t *testing.T) {
	const frames512MB = 512 * 256
	hybrid := HybridConfig().WorstCaseLatency(frames512MB)
	full := FullLadderConfig().WorstCaseLatency(frames512MB)
	if full <= hybrid {
		t.Fatalf("full ladder bound %v not above hybrid %v", full, hybrid)
	}
	if full-hybrid < privVMBootCost {
		t.Fatalf("full-hybrid gap %v smaller than the PrivVM boot cost %v", full-hybrid, privVMBootCost)
	}
	single := Config{Mechanism: PrivVMRestart}.WorstCaseLatency(frames512MB)
	if single < privVMBootCost+privVMMaxReattachVMs*privVMReattachPerVM {
		t.Fatalf("PrivVM-restart bound %v below its own mandatory steps", single)
	}
}

// TestFullLadderConfigShape pins the rung order and policy of the
// escalation ladder the fault-matrix experiment uses.
func TestFullLadderConfigShape(t *testing.T) {
	cfg := FullLadderConfig()
	want := []Mechanism{Microreset, Microreboot, PrivVMRestart}
	if len(cfg.Escalation.Ladder) != len(want) {
		t.Fatalf("ladder = %v", cfg.Escalation.Ladder)
	}
	for i, m := range want {
		if cfg.Escalation.Ladder[i] != m {
			t.Fatalf("rung %d = %v, want %v", i, cfg.Escalation.Ladder[i], m)
		}
	}
	if !cfg.Escalation.Audit {
		t.Fatal("full ladder must audit (the matrix reports audit verdicts)")
	}
	if cfg.MaxAttempts() != 3 {
		t.Fatalf("MaxAttempts = %d", cfg.MaxAttempts())
	}
	if PrivVMRestart.String() != "PrivVM-Restart" {
		t.Fatalf("mechanism name %q", PrivVMRestart.String())
	}
	if PrivVMRestart.Reboots() {
		t.Fatal("PrivVM restart must not count as a hypervisor reboot")
	}
}
