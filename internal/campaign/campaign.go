package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"nilihype/internal/health"
	"nilihype/internal/telemetry"
	"nilihype/internal/traffic"
)

// Campaign is a batch of identical runs differing only in seed.
type Campaign struct {
	Base RunConfig
	Runs int
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
	// SeedBase offsets the seed sequence: run i (0-based) uses seed
	// SeedBase+i+1, so sharded campaigns can partition a seed space
	// without overlap. Zero preserves the historical seeds 1..Runs.
	SeedBase uint64
	// OnResult, if non-nil, is invoked once per completed run, in
	// completion order (not seed order), serialized — implementations
	// need no locking. It lets callers stream per-run output without
	// the executor retaining results; keep it fast, it is on the
	// aggregation path. The Result's backing arrays are recycled into
	// the worker's next run once the callback returns (copy-on-retain):
	// retain r.Clone(), never r itself.
	OnResult func(Result)
	// ColdBoot forces every run to boot its own system instead of
	// forking the per-worker pristine snapshot. The Summary is
	// bit-identical either way (the equivalence suite asserts it); the
	// toggle exists for that suite and for debugging snapshot issues.
	ColdBoot bool
}

// Summary aggregates a campaign.
type Summary struct {
	Config RunConfig
	Runs   int

	// Outcome breakdown (§VII-A).
	NonManifested int
	SDCCount      int
	DetectedCount int

	// Recovery statistics over detected runs.
	RecoverySuccess int
	NoVMFCount      int

	// EscalatedRuns counts detected runs whose engine escalated past the
	// first recovery attempt.
	EscalatedRuns int
	// SuccessByAttempt histograms successful runs by how many recovery
	// attempts they needed (key 1 = first rung sufficed).
	SuccessByAttempt map[int]int
	// SuccessLatency accumulates total recovery latency (all attempts)
	// over successful runs; MeanSuccessLatency derives the mean.
	SuccessLatency time.Duration

	// Audit totals (EscalationPolicy.Audit): violations found, repairs
	// applied, and AppVMs sacrificed across all runs.
	AuditViolations int
	AuditRepaired   int
	SacrificedVMs   int

	// Recovery-domain totals (Recovery.RepairCPUs > 1): runs that used the
	// partitioned repair path, the largest distinct-domain count any run's
	// recovery touched, and — summed over those runs — what the repair and
	// audit phases would have cost serialized vs what the parallel domain
	// schedule charged. All are counters or maxima, so they merge
	// commutatively like every other Summary field.
	ParallelRepairRuns    int
	RepairDomains         int
	SerialRepairLatency   time.Duration
	ParallelRepairLatency time.Duration

	// Adversarial-injection totals: runs whose burst fault fired, runs
	// whose fault-during-recovery trigger fired, and runs whose
	// correlated fault-while-degraded re-injection fired.
	BurstFiredRuns          int
	DuringRecoveryFiredRuns int
	CorrelatedFiredRuns     int

	// FaultClasses breaks the recovery statistics down by fault class —
	// the per-fault-class recovery matrix. Lazy-nil like PhaseHists so
	// summaries compare deep-equal across execution strategies; every
	// field is a counter, so merges are order-independent and the map is
	// bit-identical at any parallelism or sharding.
	FaultClasses map[string]*FaultClassStats

	// FailReasons histograms recovery-failure causes.
	FailReasons map[string]int

	// LatencyHist histograms total recovery latency (µs) over successful
	// runs; PhaseHists histograms each itemized recovery-phase duration
	// (µs) by phase name, over all attempts of all detected runs. Both
	// are integer power-of-two histograms with commutative, associative
	// merges, so the summary stays bit-identical at any parallelism.
	LatencyHist telemetry.Hist
	PhaseHists  map[string]*telemetry.Hist

	// SLORuns counts runs that carried a traffic SLO (RunConfig.Traffic
	// enabled); SLO aggregates them. traffic.SLO.Merge is exact-integer
	// commutative/associative like every other Summary field, so the
	// aggregate is bit-identical at any parallelism or shard count.
	SLORuns int
	SLO     traffic.SLO

	// RootCauses histograms the forensic root-cause classes over wrong
	// runs (failed, escalated, or degraded). Lazy-nil like FailReasons'
	// siblings; counters only, so the breakdown is bit-identical at any
	// parallelism or shard count.
	RootCauses map[string]int

	// HealthSamples carries each detected run's health-model episode,
	// keyed by seed. Keyed merging is order-independent, and the health
	// trajectory is computed by replaying samples in seed order
	// (HealthReport) — never in completion order — so it too is
	// bit-identical across execution strategies.
	HealthSamples map[uint64]health.Sample
}

// FaultClassStats is one fault class's row of the per-class recovery
// matrix. All fields are counters (SuccessLatency an additive sum), so the
// row merges commutatively like every other Summary field.
type FaultClassStats struct {
	// Runs/Detected/Success/NoVMF mirror the Summary-level counters,
	// restricted to this class's runs.
	Runs     int
	Detected int
	Success  int
	NoVMF    int
	// SuccessLatency sums total recovery latency over successful runs.
	SuccessLatency time.Duration
	// AuditRepaired/AuditDegraded/AuditEscalate total the class's audit
	// verdicts (degraded = sacrificed AppVMs).
	AuditRepaired int
	AuditDegraded int
	AuditEscalate int
	// RootCauses histograms the class's wrong runs by forensic root
	// cause. Lazy-nil like the Summary-level map.
	RootCauses map[string]int
}

func (fc *FaultClassStats) merge(p *FaultClassStats) {
	fc.Runs += p.Runs
	fc.Detected += p.Detected
	fc.Success += p.Success
	fc.NoVMF += p.NoVMF
	fc.SuccessLatency += p.SuccessLatency
	fc.AuditRepaired += p.AuditRepaired
	fc.AuditDegraded += p.AuditDegraded
	fc.AuditEscalate += p.AuditEscalate
	for k, v := range p.RootCauses {
		if fc.RootCauses == nil {
			fc.RootCauses = make(map[string]int)
		}
		fc.RootCauses[k] += v
	}
}

// MeanSuccessLatency returns the class's mean successful-recovery latency.
func (fc *FaultClassStats) MeanSuccessLatency() time.Duration {
	if fc.Success == 0 {
		return 0
	}
	return fc.SuccessLatency / time.Duration(fc.Success)
}

// SuccessRate returns the class's successful recovery rate over its
// detected runs, with its 95% confidence half-width.
func (fc *FaultClassStats) SuccessRate() (rate, ci float64) {
	return proportion(fc.Success, fc.Detected)
}

// faultClass returns the named class row, creating it on first use.
// Laziness keeps FaultClasses nil when no run carried a class, so
// summaries compare deep-equal across execution strategies.
func (s *Summary) faultClass(name string) *FaultClassStats {
	fc := s.FaultClasses[name]
	if fc == nil {
		if s.FaultClasses == nil {
			s.FaultClasses = make(map[string]*FaultClassStats)
		}
		fc = &FaultClassStats{}
		s.FaultClasses[name] = fc
	}
	return fc
}

// phaseHist returns the named phase histogram, creating it on first use.
// Laziness keeps PhaseHists nil (not empty) when no run produced phases,
// so summaries compare deep-equal across execution strategies.
func (s *Summary) phaseHist(name string) *telemetry.Hist {
	h := s.PhaseHists[name]
	if h == nil {
		if s.PhaseHists == nil {
			s.PhaseHists = make(map[string]*telemetry.Hist)
		}
		h = &telemetry.Hist{}
		s.PhaseHists[name] = h
	}
	return h
}

// MeanSuccessLatency returns the mean recovery latency of successful runs.
func (s Summary) MeanSuccessLatency() time.Duration {
	if s.RecoverySuccess == 0 {
		return 0
	}
	return s.SuccessLatency / time.Duration(s.RecoverySuccess)
}

// Merge folds another summary over the same configuration into s — e.g.
// the per-fault-type shards of a mixed-fault campaign. Unlike the internal
// worker merge, run counts accumulate too.
func (s *Summary) Merge(p Summary) {
	s.Runs += p.Runs
	s.merge(&p)
}

// Execute runs the campaign with seeds SeedBase+1..SeedBase+Runs on a
// fixed pool of Parallelism workers. Each worker aggregates its runs into
// a private partial Summary; the partials are merged after the pool
// drains. Memory is O(Parallelism) regardless of Runs — no per-run Result
// slice is retained — and because every Summary field is an
// order-independent counter, the merged Summary is identical whatever the
// parallelism level or completion order.
func (c *Campaign) Execute() Summary {
	s := Summary{Config: c.Base, Runs: c.Runs,
		FailReasons: make(map[string]int), SuccessByAttempt: make(map[int]int)}
	if c.Runs <= 0 {
		return s
	}
	par := c.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > c.Runs {
		par = c.Runs
	}
	seeds := make(chan uint64)
	partials := make([]Summary, par)
	var mu sync.Mutex // serializes OnResult across workers
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(p *Summary) {
			defer wg.Done()
			p.FailReasons = make(map[string]int)
			p.SuccessByAttempt = make(map[int]int)
			// Boot-once fork-many: each worker keeps one pristine boot
			// image per configuration shape and forks every run from its
			// snapshot instead of re-booting. Workers never share images,
			// so runs stay single-threaded over their machine state.
			images := make(map[imageKey]*image)
			for seed := range seeds {
				rc := c.Base
				rc.Seed = seed
				r := c.runOne(rc, images)
				p.add(r)
				if c.OnResult != nil {
					mu.Lock()
					c.OnResult(r)
					mu.Unlock()
				}
			}
		}(&partials[w])
	}
	for i := 0; i < c.Runs; i++ {
		seeds <- c.SeedBase + uint64(i+1)
	}
	close(seeds)
	wg.Wait()
	for i := range partials {
		s.merge(&partials[i])
	}
	return s
}

// runOne executes one campaign run, forking from the worker's cached boot
// image when possible. No-injection runs (pure-baseline measurements) and
// ColdBoot campaigns take the cold path.
func (c *Campaign) runOne(rc RunConfig, images map[imageKey]*image) Result {
	rc = rc.withDefaults()
	if c.ColdBoot || rc.NoInjection {
		return Run(rc)
	}
	k := keyOf(rc)
	img := images[k]
	if img == nil {
		var err error
		img, err = buildImage(rc)
		if err != nil {
			return Result{Seed: rc.Seed, NewVMOK: true, FailReason: err.Error(), FaultClass: rc.FaultClass()}
		}
		images[k] = img
	}
	return img.run(rc)
}

// merge folds a worker's partial summary into s. All fields are counters,
// so merging is commutative and associative: the result does not depend
// on worker count or scheduling.
func (s *Summary) merge(p *Summary) {
	s.NonManifested += p.NonManifested
	s.SDCCount += p.SDCCount
	s.DetectedCount += p.DetectedCount
	s.RecoverySuccess += p.RecoverySuccess
	s.NoVMFCount += p.NoVMFCount
	s.EscalatedRuns += p.EscalatedRuns
	s.SuccessLatency += p.SuccessLatency
	s.AuditViolations += p.AuditViolations
	s.AuditRepaired += p.AuditRepaired
	s.SacrificedVMs += p.SacrificedVMs
	s.ParallelRepairRuns += p.ParallelRepairRuns
	if p.RepairDomains > s.RepairDomains {
		s.RepairDomains = p.RepairDomains
	}
	s.SerialRepairLatency += p.SerialRepairLatency
	s.ParallelRepairLatency += p.ParallelRepairLatency
	s.BurstFiredRuns += p.BurstFiredRuns
	s.DuringRecoveryFiredRuns += p.DuringRecoveryFiredRuns
	s.CorrelatedFiredRuns += p.CorrelatedFiredRuns
	for k, fc := range p.FaultClasses {
		s.faultClass(k).merge(fc)
	}
	for k, v := range p.SuccessByAttempt {
		s.SuccessByAttempt[k] += v
	}
	for k, v := range p.FailReasons {
		s.FailReasons[k] += v
	}
	s.LatencyHist.Merge(&p.LatencyHist)
	for k, h := range p.PhaseHists {
		s.phaseHist(k).Merge(h)
	}
	s.SLORuns += p.SLORuns
	s.SLO.Merge(&p.SLO)
	for k, v := range p.RootCauses {
		s.rootCause(k, v)
	}
	for seed, hs := range p.HealthSamples {
		s.healthSample(seed, hs)
	}
}

// rootCause bumps the named root-cause counter, creating the map on first
// use (lazy-nil like FaultClasses).
func (s *Summary) rootCause(name string, n int) {
	if s.RootCauses == nil {
		s.RootCauses = make(map[string]int)
	}
	s.RootCauses[name] += n
}

// healthSample records one run's health episode, creating the map on
// first use (lazy-nil like FaultClasses).
func (s *Summary) healthSample(seed uint64, hs health.Sample) {
	if s.HealthSamples == nil {
		s.HealthSamples = make(map[uint64]health.Sample)
	}
	s.HealthSamples[seed] = hs
}

// HealthReport replays the campaign's detected runs, in seed order, as
// one host's recovery-episode sequence through the health model — the
// host-health trajectory this campaign's fault load would produce.
func (s *Summary) HealthReport(cfg health.Config) health.Report {
	if len(s.HealthSamples) == 0 {
		return health.Replay(cfg, nil)
	}
	seeds := make([]uint64, 0, len(s.HealthSamples))
	for seed := range s.HealthSamples {
		seeds = append(seeds, seed)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	samples := make([]health.Sample, len(seeds))
	for i, seed := range seeds {
		samples[i] = s.HealthSamples[seed]
	}
	return health.Replay(cfg, samples)
}

func (s *Summary) add(r Result) {
	for _, ph := range r.Phases {
		s.phaseHist(ph.Name).Observe(uint64(ph.Dur / time.Microsecond))
	}
	if r.SLO != nil {
		s.SLORuns++
		s.SLO.Merge(r.SLO)
	}
	s.AuditViolations += r.AuditViolations
	s.AuditRepaired += r.AuditRepaired
	s.SacrificedVMs += len(r.SacrificedVMs)
	if r.RepairDomains > 0 {
		s.ParallelRepairRuns++
		if r.RepairDomains > s.RepairDomains {
			s.RepairDomains = r.RepairDomains
		}
		s.SerialRepairLatency += r.SerialRepairLatency
		s.ParallelRepairLatency += r.ParallelRepairLatency
	}
	if r.BurstFired {
		s.BurstFiredRuns++
	}
	if r.DuringRecoveryFired {
		s.DuringRecoveryFiredRuns++
	}
	if r.CorrelatedFired {
		s.CorrelatedFiredRuns++
	}
	if r.RootCause != "" {
		s.rootCause(r.RootCause, 1)
		if r.FaultClass != "" {
			fc := s.faultClass(r.FaultClass)
			if fc.RootCauses == nil {
				fc.RootCauses = make(map[string]int)
			}
			fc.RootCauses[r.RootCause]++
		}
	}
	if r.Detected {
		var damage uint64
		if r.SLO != nil {
			damage = r.SLO.DegradedUserUs
		}
		s.healthSample(r.Seed, health.Sample{
			Recovered:        r.Recovered && r.FailReason == "",
			Attempts:         r.Attempts,
			MaxAttempts:      r.MaxAttempts,
			DegradedVerdicts: len(r.SacrificedVMs),
			SLODamageUs:      damage,
		})
	}
	if r.FaultClass != "" {
		fc := s.faultClass(r.FaultClass)
		fc.Runs++
		if r.Outcome == Detected {
			fc.Detected++
			if r.Success {
				fc.Success++
				fc.SuccessLatency += r.Latency
			}
			if r.NoVMF {
				fc.NoVMF++
			}
		}
		fc.AuditRepaired += r.AuditRepaired
		fc.AuditDegraded += len(r.SacrificedVMs)
		fc.AuditEscalate += r.AuditEscalations
	}
	switch r.Outcome {
	case NonManifested:
		s.NonManifested++
	case SDC:
		s.SDCCount++
	case Detected:
		s.DetectedCount++
		if r.Escalated {
			s.EscalatedRuns++
		}
		if r.Success {
			s.RecoverySuccess++
			s.SuccessLatency += r.Latency
			s.LatencyHist.Observe(uint64(r.Latency / time.Microsecond))
			n := r.Attempts
			if n < 1 {
				n = 1
			}
			s.SuccessByAttempt[n]++
		} else {
			s.FailReasons[classifyFailure(r)]++
		}
		if r.NoVMF {
			s.NoVMFCount++
		}
	}
}

// classifyFailure buckets a failed run into the paper's failure-cause
// categories (§VII-A). Hypervisor-level FailReason buckets are checked
// first: a hypervisor panic or hang usually takes the PrivVM down with it,
// and histogramming such a run as "PrivVM failed" would hide the root
// cause — the PrivVM loss is the consequence, not the failure.
func classifyFailure(r Result) string {
	switch {
	case strings.Contains(r.FailReason, "failed to be invoked"):
		return "recovery routine not invoked"
	case strings.Contains(r.FailReason, "corrupted"):
		return "corrupted data structure"
	case strings.Contains(r.FailReason, "ASSERT"):
		return "post-recovery assertion"
	case strings.Contains(r.FailReason, "hang") || strings.Contains(r.FailReason, "spinning") ||
		strings.Contains(r.FailReason, "watchdog") || strings.Contains(r.FailReason, "waiting forever"):
		return "post-recovery hang"
	case r.FailReason != "":
		return "other hypervisor failure"
	case r.PrivVMFailed:
		return "PrivVM failed"
	case !r.NewVMOK:
		return "new VM creation failed"
	case r.AppVMsFailed > 1:
		return "multiple AppVMs lost"
	default:
		return "AppVM lost (1AppVM criterion)"
	}
}

// SuccessRate returns the successful recovery rate over detected runs,
// with its 95% confidence half-width.
func (s Summary) SuccessRate() (rate, ci float64) {
	return proportion(s.RecoverySuccess, s.DetectedCount)
}

// NoVMFRate returns the no-VM-failures rate over detected runs.
func (s Summary) NoVMFRate() (rate, ci float64) {
	return proportion(s.NoVMFCount, s.DetectedCount)
}

// OutcomeRates returns the non-manifested/SDC/detected fractions.
func (s Summary) OutcomeRates() (nonManifested, sdc, detected float64) {
	if s.Runs == 0 {
		return 0, 0, 0
	}
	n := float64(s.Runs)
	return float64(s.NonManifested) / n, float64(s.SDCCount) / n, float64(s.DetectedCount) / n
}

// proportion computes k/n and a 95% CI half-width from the Wilson score
// interval. Unlike the normal approximation, Wilson stays inside [0,1]
// and gives a nonzero width at k=0 and k=n — which matters here because
// recovery campaigns routinely see success rates at or near 100%. The
// Wilson interval is asymmetric around k/n, so the reported half-width is
// the larger of the two distances (the interval [rate-ci, rate+ci] always
// covers it).
func proportion(k, n int) (rate, ci float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.96 // 95%
	nf := float64(n)
	p := float64(k) / nf
	z2n := z * z / nf
	denom := 1 + z2n
	center := (p + z2n/2) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	return p, math.Max(p-(center-half), (center+half)-p)
}

// Format renders the summary as a report block.
func (s Summary) Format() string {
	var b strings.Builder
	rate, ci := s.SuccessRate()
	nrate, nci := s.NoVMFRate()
	fmt.Fprintf(&b, "%s %s %v, %d runs\n", s.Config.Recovery.Mechanism, s.Config.Setup, s.Config.Fault, s.Runs)
	nm, sdc, det := s.OutcomeRates()
	fmt.Fprintf(&b, "  outcomes: %.1f%% non-manifested, %.1f%% SDC, %.1f%% detected\n",
		100*nm, 100*sdc, 100*det)
	fmt.Fprintf(&b, "  successful recovery: %.1f%% ± %.1f%%  (noVMF %.1f%% ± %.1f%%)\n",
		100*rate, 100*ci, 100*nrate, 100*nci)
	if s.RecoverySuccess > 0 && (s.Config.Recovery.MaxAttempts() > 1 || s.EscalatedRuns > 0) {
		fmt.Fprintf(&b, "  escalated: %d run(s); mean successful-recovery latency: %v\n",
			s.EscalatedRuns, s.MeanSuccessLatency().Round(10*time.Microsecond))
		var attempts []int
		for n := range s.SuccessByAttempt {
			attempts = append(attempts, n)
		}
		sort.Ints(attempts)
		fmt.Fprintf(&b, "  success by attempt:")
		for _, n := range attempts {
			fmt.Fprintf(&b, " %d:%d", n, s.SuccessByAttempt[n])
		}
		fmt.Fprintf(&b, "\n")
	}
	if s.AuditViolations > 0 {
		fmt.Fprintf(&b, "  audit: %d violation(s), %d repaired, %d VM(s) sacrificed\n",
			s.AuditViolations, s.AuditRepaired, s.SacrificedVMs)
	}
	if s.ParallelRepairRuns > 0 {
		fmt.Fprintf(&b, "  parallel repair: %d run(s) over up to %d recovery domains; serialized %v vs parallel %v charged\n",
			s.ParallelRepairRuns, s.RepairDomains,
			s.SerialRepairLatency.Round(10*time.Microsecond),
			s.ParallelRepairLatency.Round(10*time.Microsecond))
	}
	if s.LatencyHist.Count > 0 {
		fmt.Fprintf(&b, "  recovery latency (µs): p50=%d p99=%d max=%d over %d successful run(s)\n",
			s.LatencyHist.Quantile(0.50), s.LatencyHist.Quantile(0.99),
			s.LatencyHist.Max, s.LatencyHist.Count)
	}
	if len(s.PhaseHists) > 0 {
		fmt.Fprintf(&b, "  recovery phase latencies (µs):\n")
		names := make([]string, 0, len(s.PhaseHists))
		for k := range s.PhaseHists {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, n := range names {
			h := s.PhaseHists[n]
			fmt.Fprintf(&b, "    %-62s n=%-5d p50=%-8d p99=%-8d max=%d\n",
				n, h.Count, h.Quantile(0.50), h.Quantile(0.99), h.Max)
		}
	}
	if s.BurstFiredRuns > 0 || s.DuringRecoveryFiredRuns > 0 || s.CorrelatedFiredRuns > 0 {
		fmt.Fprintf(&b, "  adversarial: burst fired in %d run(s), during-recovery in %d run(s), correlated in %d run(s)\n",
			s.BurstFiredRuns, s.DuringRecoveryFiredRuns, s.CorrelatedFiredRuns)
	}
	if len(s.FaultClasses) > 0 {
		fmt.Fprintf(&b, "  fault classes:\n")
		names := make([]string, 0, len(s.FaultClasses))
		for k := range s.FaultClasses {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, n := range names {
			fc := s.FaultClasses[n]
			rate, ci := fc.SuccessRate()
			fmt.Fprintf(&b, "    %-28s runs=%-5d detected=%-5d success=%5.1f%% ±%4.1f%% noVMF=%-4d mean-latency=%v\n",
				n, fc.Runs, fc.Detected, 100*rate, 100*ci, fc.NoVMF,
				fc.MeanSuccessLatency().Round(10*time.Microsecond))
			if fc.AuditRepaired > 0 || fc.AuditDegraded > 0 || fc.AuditEscalate > 0 {
				fmt.Fprintf(&b, "      audit verdicts: %d repaired, %d degraded, %d escalate\n",
					fc.AuditRepaired, fc.AuditDegraded, fc.AuditEscalate)
			}
		}
	}
	if s.SLORuns > 0 {
		slo := &s.SLO
		fmt.Fprintf(&b, "  end-user SLO (%d user(s), %d run(s)):\n", slo.Users, s.SLORuns)
		fmt.Fprintf(&b, "    requests: %d offered, %d completed (%d late), %d timed out, %d failed — goodput %d.%d%%\n",
			slo.Offered, slo.Completed, slo.Delayed, slo.TimedOut, slo.Failed,
			slo.GoodputPermille()/10, slo.GoodputPermille()%10)
		fmt.Fprintf(&b, "    degradation: %.2f user-seconds/run (%d outage(s), %v total outage)\n",
			slo.DegradedUserSeconds()/float64(s.SLORuns), slo.Outages,
			(time.Duration(slo.OutageUs) * time.Microsecond).Round(10*time.Microsecond))
		fmt.Fprintf(&b, "    latency (µs): p50=%d p99=%d max=%d; intervals: %d scored, %d degraded, worst goodput %d‰\n",
			slo.Latency.Quantile(0.50), slo.Latency.Quantile(0.99), slo.Latency.Max,
			slo.Intervals, slo.DegradedIntervals, slo.WorstIntervalPermille)
	}
	if len(s.FailReasons) > 0 {
		fmt.Fprintf(&b, "  failure causes:\n")
		type kv struct {
			k string
			v int
		}
		var sorted []kv
		for k, v := range s.FailReasons {
			sorted = append(sorted, kv{k, v})
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].v != sorted[j].v {
				return sorted[i].v > sorted[j].v
			}
			return sorted[i].k < sorted[j].k
		})
		for _, e := range sorted {
			fmt.Fprintf(&b, "    %-40s %d\n", e.k, e.v)
		}
	}
	if len(s.RootCauses) > 0 {
		fmt.Fprintf(&b, "  root causes (wrong runs):\n")
		causes := make([]string, 0, len(s.RootCauses))
		for k := range s.RootCauses {
			causes = append(causes, k)
		}
		sort.Strings(causes)
		for _, c := range causes {
			fmt.Fprintf(&b, "    %-40s %d\n", c, s.RootCauses[c])
		}
	}
	if len(s.HealthSamples) > 0 {
		b.WriteString("  " + strings.TrimSuffix(strings.ReplaceAll(
			s.HealthReport(health.Config{}).Format(), "\n", "\n  "), "  "))
	}
	return b.String()
}
