package xentime

import "time"

// timerState is one timer's captured fields (Name/CPU/Period/Fn and the
// precomputed labels are immutable).
type timerState struct {
	timer    *Timer
	deadline time.Duration
	fires    uint64
	active   bool
	index    int
}

// Snapshot captures the timer subsystem: every per-CPU heap in slice
// order, each timer's schedule, and the registered-timer set.
type Snapshot struct {
	heaps [][]timerState
	// all holds the registered set (includes inactive timers that are on
	// no heap).
	all []*Timer
}

// Snapshot captures the subsystem state.
func (s *Subsystem) Snapshot() *Snapshot {
	snap := &Snapshot{heaps: make([][]timerState, len(s.heaps))}
	for cpu := range s.heaps {
		h := s.heaps[cpu]
		states := make([]timerState, len(h))
		for i, t := range h {
			states[i] = timerState{timer: t, deadline: t.Deadline, fires: t.Fires, active: t.active, index: t.index}
		}
		snap.heaps[cpu] = states
	}
	// Deterministic capture order for the registered set: heap membership
	// first (slice order), then any inactive stragglers. Order only
	// matters for reproducibility of the snapshot structure itself — the
	// set is restored into a map.
	seen := make(map[*Timer]bool, len(s.all))
	for cpu := range snap.heaps {
		for i := range snap.heaps[cpu] {
			t := snap.heaps[cpu][i].timer
			if _, ok := s.all[t]; ok && !seen[t] {
				seen[t] = true
				snap.all = append(snap.all, t)
			}
		}
	}
	for t := range s.all {
		if !seen[t] {
			snap.all = append(snap.all, t)
		}
	}
	return snap
}

// Restore rewinds the subsystem: every per-CPU heap regains its saved
// slice order (the saved layout satisfied the heap property when captured,
// so it still does), every snapshot timer regains its saved schedule, and
// timers added after the snapshot drop out of the registered set.
func (s *Subsystem) Restore(snap *Snapshot) {
	for cpu := range s.heaps {
		saved := snap.heaps[cpu]
		prev := len(s.heaps[cpu])
		h := s.heaps[cpu][:0]
		for i := range saved {
			st := &saved[i]
			t := st.timer
			t.Deadline = st.deadline
			t.Fires = st.fires
			t.active = st.active
			t.index = st.index
			h = append(h, t)
		}
		// Nil the vacated tail so timers dropped from the heap are not
		// pinned by the backing array.
		for i := len(h); i < prev; i++ {
			s.heaps[cpu][:prev][i] = nil
		}
		s.heaps[cpu] = h
	}
	for t := range s.all {
		delete(s.all, t)
	}
	for _, t := range snap.all {
		s.all[t] = struct{}{}
	}
	s.dueScratch = s.dueScratch[:0]
}
