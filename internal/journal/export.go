package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nilihype/internal/telemetry"
)

// Entry is one journal event with its interned strings resolved — the
// exportable form a Result carries and the JSONL/trace renderers consume.
// All fields are value types, so entries survive the journal's restore and
// compare with reflect.DeepEqual.
type Entry struct {
	Seq    uint32        `json:"seq"`
	Span   uint32        `json:"span,omitempty"`
	Cause  uint32        `json:"cause,omitempty"`
	At     time.Duration `json:"at_ns"`
	CPU    int16         `json:"cpu"`
	Kind   string        `json:"kind"`
	Detail string        `json:"detail,omitempty"`
	Aux    uint64        `json:"aux,omitempty"`
	// AuxText resolves Aux for kinds whose payload is an interned string
	// (fault trigger names, disposition reasons) or packed counts (audit
	// verdicts) — the human-readable companion to the raw value.
	AuxText string `json:"aux_text,omitempty"`
}

// String renders the entry as a timeline line.
func (e Entry) String() string {
	s := fmt.Sprintf("[%10.3fms] cpu%-2d #%-3d %-12s", float64(e.At)/float64(time.Millisecond), e.CPU, e.Seq, e.Kind)
	if e.Span != 0 && e.Span != e.Seq {
		s += fmt.Sprintf(" span=#%d", e.Span)
	}
	if e.Cause != 0 {
		s += fmt.Sprintf(" cause=#%d", e.Cause)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.AuxText != "" {
		s += " (" + e.AuxText + ")"
	}
	return s
}

// export resolves one event into an Entry.
func (j *Journal) export(e Event) Entry {
	out := Entry{
		Seq: e.Seq, Span: e.Span, Cause: e.Cause,
		At: e.At, CPU: e.CPU,
		Kind: e.Kind.String(), Detail: j.Str(e.Detail), Aux: e.Aux,
	}
	switch e.Kind {
	case KindFault:
		out.AuxText = j.Str(uint32(e.Aux))
	case KindAttempt:
		out.AuxText = "attempt " + itoa(int(e.Aux))
	case KindAudit:
		v, r, s, esc := UnpackAuditAux(e.Aux)
		out.AuxText = fmt.Sprintf("violations=%d repaired=%d sacrificed=%d escalate=%d", v, r, s, esc)
	case KindDisposition:
		if e.Aux != 0 {
			out.AuxText = j.Str(uint32(e.Aux))
		}
	}
	return out
}

// Export resolves every recorded event. It returns nil (not an empty
// slice) for an empty journal, so Results assembled in recycled scratch
// stay bit-identical to cold ones.
func (j *Journal) Export() []Entry {
	if j == nil || len(j.events) == 0 {
		return nil
	}
	out := make([]Entry, len(j.events))
	for i, e := range j.events {
		out[i] = j.export(e)
	}
	return out
}

// WriteJSONL writes the journal as JSON Lines, one event per line.
func (j *Journal) WriteJSONL(w io.Writer) error {
	return WriteEntriesJSONL(w, j.Export())
}

// WriteEntriesJSONL writes exported entries as JSON Lines — the bundle
// form, usable after the producing journal has been recycled.
func WriteEntriesJSONL(w io.Writer, entries []Entry) error {
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// TraceLaneTID is the journal's thread ID in the merged Chrome trace view,
// above the per-CPU lanes (0..N) and the recovery-phase lane (1000).
const TraceLaneTID = 2000

// TraceLane renders the journal as an extra Chrome-trace lane for
// telemetry.WriteChromeTraceLanes: one instant marker per event, plus one
// span per attempt stretching from its begin to its resume (or its
// failure, for attempts that never got the system back up).
func TraceLane(entries []Entry) telemetry.ExtraLane {
	lane := telemetry.ExtraLane{TID: TraceLaneTID, Name: "journal"}
	// Attempt spans: begin → resume/fail within the same span ID.
	spanEnd := make(map[uint32]time.Duration, 4)
	for _, e := range entries {
		if (e.Kind == "resume" || e.Kind == "attempt-fail") && e.Span != 0 {
			if _, seen := spanEnd[e.Span]; !seen {
				spanEnd[e.Span] = e.At
			}
		}
	}
	for _, e := range entries {
		name := e.Kind
		if e.Detail != "" {
			name += ":" + e.Detail
		}
		detail := e.AuxText
		if e.Cause != 0 {
			if detail != "" {
				detail += "; "
			}
			detail += "cause=#" + itoa(int(e.Cause))
		}
		m := telemetry.TraceMarker{Name: name, At: e.At, Detail: detail}
		if e.Kind == "attempt" {
			if end, ok := spanEnd[e.Seq]; ok && end > e.At {
				m.Dur = end - e.At
			}
		}
		lane.Markers = append(lane.Markers, m)
	}
	return lane
}
